"""Auxiliary-neighbor selection for Chord (paper Section V).

All ids are mapped into the frame of the selecting node (the paper's
"zero-node"): peer ``l`` becomes its clockwise gap ``g_l = (id_l - id_s)
mod 2**b``, and the hop estimate from a pointer at gap ``w`` to a peer at
gap ``g >= w`` is ``bitlength(g - w)`` (eq. 6). Because the gap-to-hops map
is monotone, every peer is served by its *closest preceding* pointer, which
is what makes the interval dynamic program work:

``C_i(m) = min_{1<=j<=m} [ C_{i-1}(j-1) + s(j, m) ]``            (eq. 7)

with ``s(j, m)`` the cost of serving peers ``j+1 .. m`` given a pointer at
peer ``j`` plus the core neighbors (eq. 8).

Solvers:

* :func:`select_chord_dp` — the ``O(n^2 k)`` dynamic program of Section
  V-A: tabulates ``s(j, m)`` by linear sweeps and takes explicit minima.
  Supports QoS delay bounds (Section V-C) by declaring violating
  placements infeasible.
* :func:`select_chord_fast` — Section V-B. Three ingredients:

  1. cumulative frequencies ``F`` and, per anchor, the farthest-peer
     tables ``p_w(r)`` with prefix sums of ``r * (F(p_w(r)) - F(p_w(r-1)))``
     (eq. 9), so any core-free span's cost is O(1) after an O(log n)
     index lookup;
  2. segment splitting at core neighbors with cumulative full-segment
     costs (eq. 10), so any ``s(j, m)`` costs ``O(log n + log b)``;
  3. a divide-and-conquer layer solver in place of the paper's reference
     [9]: ``s`` satisfies the Monge/concavity condition (extending the
     span by one peer costs less under a closer pointer), hence the
     optimal ``j`` is monotone in ``m`` and each of the ``k`` layers
     resolves in ``O(n log n)`` evaluations.

:func:`select_chord` dispatches: QoS bounds or tiny instances use the DP,
everything else the fast solver.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.core.cost import _MAX_VECTOR_BITS, _bit_lengths
from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError, InfeasibleConstraintError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = ["select_chord", "select_chord_dp", "select_chord_fast"]

_INF = float("inf")


@dataclass
class _ChordInstance:
    """A selection problem normalized to the selecting node's frame.

    ``gaps[i]``/``weights[i]``/``ids[i]`` describe the i-th peer in
    clockwise order (0-based internally; the paper's indices are 1-based).
    ``core_gaps`` are the clockwise offsets of the core neighbors.
    ``candidate_flags[i]`` marks peers eligible to carry an auxiliary
    pointer. ``bounds[i]`` is the max allowed ``1 + d`` (or ``None``).
    """

    bits: int
    gaps: list[int]
    weights: list[float]
    ids: list[int]
    core_gaps: list[int]
    candidate_flags: list[bool]
    bounds: list[int | None]

    @property
    def n(self) -> int:
        return len(self.gaps)


def _normalize(problem: SelectionProblem) -> _ChordInstance:
    space = problem.space
    source = problem.source
    entries: dict[int, float] = dict(problem.frequencies)
    for peer in problem.delay_bounds:
        if peer != source:
            entries.setdefault(peer, 0.0)
    order = sorted(entries, key=lambda peer: space.gap(source, peer))
    gaps = [space.gap(source, peer) for peer in order]
    weights = [float(entries[peer]) for peer in order]
    core = set(problem.core_neighbors)
    candidate_flags = [peer not in core for peer in order]
    bounds = [problem.delay_bounds.get(peer) for peer in order]
    core_gaps = sorted(space.gap(source, neighbor) for neighbor in core)
    return _ChordInstance(
        bits=space.bits,
        gaps=gaps,
        weights=weights,
        ids=order,
        core_gaps=core_gaps,
        candidate_flags=candidate_flags,
        bounds=bounds,
    )


def _serving_distance(inst: _ChordInstance, pointer_gap: int | None, peer_gap: int) -> int:
    """Hops from the best of ``{pointer} ∪ cores`` preceding ``peer_gap``."""
    best = pointer_gap if pointer_gap is not None and pointer_gap <= peer_gap else None
    index = bisect_right(inst.core_gaps, peer_gap)
    if index:
        core = inst.core_gaps[index - 1]
        best = core if best is None else max(best, core)
    if best is None:
        return inst.bits
    return (peer_gap - best).bit_length()


def _vectorizable(inst: _ChordInstance) -> bool:
    return _np is not None and inst.bits <= _MAX_VECTOR_BITS and inst.n > 0


def _base_costs(inst: _ChordInstance) -> list[float]:
    """``C_0(m)``: prefix costs (and QoS feasibility) with cores only.

    ``base[m]`` covers peers ``0 .. m-1`` (m = paper's 1-based index).
    Unconstrained instances use one NumPy sweep (searchsorted over the
    core offsets + cumulative sum); QoS-bounded ones keep the scalar
    loop, which must track per-peer infeasibility.
    """
    if _vectorizable(inst) and not any(bound is not None for bound in inst.bounds):
        gaps = _np.asarray(inst.gaps, dtype=_np.int64)
        weights = _np.asarray(inst.weights, dtype=_np.float64)
        cores = _np.asarray(inst.core_gaps, dtype=_np.int64)
        if cores.size == 0:
            distances = _np.full(inst.n, inst.bits, dtype=_np.int64)
        else:
            index = _np.searchsorted(cores, gaps, side="right")
            preceding = cores[_np.maximum(index - 1, 0)]
            distances = _np.where(index > 0, _bit_lengths(gaps - preceding), inst.bits)
        base = _np.empty(inst.n + 1, dtype=_np.float64)
        base[0] = 0.0
        _np.cumsum(weights * distances, out=base[1:])
        return base.tolist()
    base = [0.0]
    running = 0.0
    for i in range(inst.n):
        if running != _INF:
            distance = _serving_distance(inst, None, inst.gaps[i])
            bound = inst.bounds[i]
            if bound is not None and 1 + distance > bound:
                running = _INF
            else:
                running += inst.weights[i] * distance
        base.append(running)
    return base


def _span_cost_table(inst: _ChordInstance, j: int) -> list[float]:
    """All ``s(j+1, m)`` for one 0-based pointer position ``j`` by a linear
    sweep: ``table[m]`` is the cost of peers ``j+1 .. m-1`` (0-based) served
    by the pointer at peer ``j`` plus the cores. Used by the quadratic DP.
    """
    table = [0.0] * (inst.n + 1)
    running = 0.0
    pointer_gap = inst.gaps[j]
    for l in range(j + 1, inst.n):
        if running != _INF:
            distance = _serving_distance(inst, pointer_gap, inst.gaps[l])
            bound = inst.bounds[l]
            if bound is not None and 1 + distance > bound:
                running = _INF
            else:
                running += inst.weights[l] * distance
        table[l + 1] = running
    return table


def _reconstruct(parents: list[list[int]], layers: int, n: int) -> list[int]:
    """Follow the recorded argmins back to the chosen 0-based positions."""
    chosen: list[int] = []
    i, m = layers, n
    while i > 0:
        j = parents[i][m]
        if j == 0:
            i -= 1  # this layer added no pointer
            continue
        chosen.append(j - 1)  # store as 0-based peer index
        m = j - 1
        i -= 1
    return chosen


def _result(problem: SelectionProblem, inst: _ChordInstance, chosen_positions: list[int], cost_without_plus_one: float, algorithm: str) -> SelectionResult:
    total_weight = sum(inst.weights)
    auxiliary = frozenset(inst.ids[pos] for pos in chosen_positions)
    return SelectionResult(auxiliary, cost_without_plus_one + total_weight, algorithm)


def select_chord_dp(problem: SelectionProblem) -> SelectionResult:
    """Optimal selection via the ``O(n^2 k)`` dynamic program (Section V-A).

    Supports QoS delay bounds; raises
    :class:`~repro.util.errors.InfeasibleConstraintError` when no placement
    of ``k`` pointers satisfies them.
    """
    inst = _normalize(problem)
    n = inst.n
    span_tables = [_span_cost_table(inst, j) for j in range(n)]
    current = _base_costs(inst)
    k_eff = min(problem.k, sum(inst.candidate_flags))
    parents: list[list[int]] = [[0] * (n + 1)]
    for _layer in range(k_eff):
        previous = current
        current = list(previous)  # option: do not place this pointer
        parent_row = [0] * (n + 1)
        for m in range(1, n + 1):
            best = current[m]
            best_j = 0
            for j in range(1, m + 1):
                if not inst.candidate_flags[j - 1]:
                    continue
                value = previous[j - 1] + span_tables[j - 1][m]
                if value < best:
                    best = value
                    best_j = j
            current[m] = best
            parent_row[m] = best_j
        parents.append(parent_row)
    if current[n] == _INF:
        raise InfeasibleConstraintError(
            f"QoS delay bounds cannot be met with k={problem.k} auxiliary pointers"
        )
    chosen = _reconstruct(parents, k_eff, n)
    return _result(problem, inst, chosen, current[n], "chord-dp")


class _SpanOracle:
    """Answers ``s(j, m)`` queries in ``O(log n + log b)`` (Section V-B).

    For every anchor gap ``w`` (each peer position and each core neighbor)
    it precomputes, over hop distances ``r = 1 .. b``:

    * ``reach_index[w][r]`` — the paper's ``p_w(r)``: how many peers have a
      gap at most ``w + 2**r - 1`` (prefix count into the sorted gaps);
    * ``hop_prefix[w][r]`` — the prefix sum
      ``sum_{r'<=r} r' * (F(p_w(r')) - F(p_w(r'-1)))`` of eq. 9.

    Spans containing core neighbors split at them (eq. 10); the costs of
    complete core-to-core segments are pre-accumulated so a query touches
    at most two partial segments.
    """

    def __init__(self, inst: _ChordInstance) -> None:
        self.inst = inst
        self.gaps = inst.gaps
        bits = inst.bits
        # Cumulative peer frequencies: F[c] = total weight of first c peers.
        self.freq_prefix = [0.0]
        for weight in inst.weights:
            self.freq_prefix.append(self.freq_prefix[-1] + weight)
        # Anchor tables for every peer gap and every core gap. The
        # vectorized build resolves all anchors × all radii with one
        # searchsorted and a row-wise cumulative sum (eq. 9 batched);
        # the scalar loop below it is the reference/fallback.
        self._reach: dict[int, list[int]] = {}
        self._hops: dict[int, list[float]] = {}
        anchors = sorted(set(inst.gaps) | set(inst.core_gaps))
        if _vectorizable(inst) and anchors:
            gaps_arr = _np.asarray(self.gaps, dtype=_np.int64)
            prefix_arr = _np.asarray(self.freq_prefix, dtype=_np.float64)
            anchor_arr = _np.asarray(anchors, dtype=_np.int64)
            radii = _np.arange(1, bits + 1, dtype=_np.int64)
            limits = anchor_arr[:, None] + ((_np.int64(1) << radii) - 1)[None, :]
            outer = _np.searchsorted(gaps_arr, limits.ravel(), side="right")
            reach = _np.concatenate(
                [
                    _np.searchsorted(gaps_arr, anchor_arr, side="right")[:, None],
                    outer.reshape(len(anchors), bits),
                ],
                axis=1,
            )
            shells = prefix_arr[reach[:, 1:]] - prefix_arr[reach[:, :-1]]
            hops = _np.zeros((len(anchors), bits + 1), dtype=_np.float64)
            _np.cumsum(radii * shells, axis=1, out=hops[:, 1:])
            for row, gap in enumerate(anchors):
                self._reach[gap] = reach[row].tolist()
                self._hops[gap] = hops[row].tolist()
        else:
            for gap in anchors:
                reach = [bisect_right(self.gaps, gap)]
                hops = [0.0]
                for r in range(1, bits + 1):
                    limit = gap + (1 << r) - 1
                    index = bisect_right(self.gaps, limit)
                    shell = self.freq_prefix[index] - self.freq_prefix[reach[-1]]
                    hops.append(hops[-1] + r * shell)
                    reach.append(index)
                self._reach[gap] = reach
                self._hops[gap] = hops
        # Cumulative costs of complete core→core segments (eq. 10).
        cores = inst.core_gaps
        self.segment_prefix = [0.0]
        for t in range(len(cores) - 1):
            cost = self._corefree_span(cores[t], cores[t + 1] - 1)
            self.segment_prefix.append(self.segment_prefix[-1] + cost)

    def _corefree_span(self, anchor: int, limit: int) -> float:
        """Cost of peers with gap in ``(anchor, limit]`` all served by a
        pointer at ``anchor`` (no core neighbor strictly inside) — eq. 9."""
        if limit <= anchor:
            return 0.0
        span = limit - anchor
        d_max = span.bit_length()
        reach = self._reach[anchor]
        hops = self._hops[anchor]
        inner = hops[d_max - 1]
        upper_index = bisect_right(self.gaps, limit)
        outer = d_max * (self.freq_prefix[upper_index] - self.freq_prefix[reach[d_max - 1]])
        return inner + outer

    def span_cost(self, j: int, m: int) -> float:
        """``s(j, m)`` with 1-based indices per the paper: cost of peers
        ``j+1 .. m`` given a pointer at peer ``j`` plus the cores."""
        if m <= j:
            return 0.0
        anchor = self.gaps[j - 1]
        limit = self.gaps[m - 1]
        cores = self.inst.core_gaps
        lo = bisect_right(cores, anchor)
        hi = bisect_right(cores, limit)
        if lo == hi:  # no core strictly inside the span
            return self._corefree_span(anchor, limit)
        head = self._corefree_span(anchor, cores[lo] - 1)
        middle = self.segment_prefix[hi - 1] - self.segment_prefix[lo]
        tail = self._corefree_span(cores[hi - 1], limit)
        return head + middle + tail


def _solve_layer_dc(
    oracle: _SpanOracle,
    previous: list[float],
    candidates: list[int],
    current: list[float],
    parent_row: list[int],
) -> None:
    """One DP layer by divide and conquer over the Monge cost matrix.

    ``candidates`` holds the admissible 1-based pointer positions ``j``.
    ``current`` arrives pre-filled with the "place no pointer" option
    (``previous`` copied) and is lowered in place.
    """
    n = len(previous) - 1

    def weight(candidate_index: int, m: int) -> float:
        j = candidates[candidate_index]
        return previous[j - 1] + oracle.span_cost(j, m)

    def solve(m_lo: int, m_hi: int, c_lo: int, c_hi: int) -> None:
        if m_lo > m_hi or c_lo > c_hi:
            return
        m_mid = (m_lo + m_hi) // 2
        # Admissible candidates for m_mid: pointer position j <= m_mid.
        upper = bisect_right(candidates, m_mid) - 1
        best = _INF
        best_c = -1
        for c in range(c_lo, min(c_hi, upper) + 1):
            value = weight(c, m_mid)
            if value < best:
                best = value
                best_c = c
        if best_c < 0:
            # No candidate fits at m_mid, hence none for smaller m either.
            solve(m_mid + 1, m_hi, c_lo, c_hi)
            return
        if best < current[m_mid]:
            current[m_mid] = best
            parent_row[m_mid] = candidates[best_c]
        # Monge property of s(j, m): the (leftmost) optimal candidate index
        # is non-decreasing in m, so the halves need only straddle it.
        solve(m_lo, m_mid - 1, c_lo, best_c)
        solve(m_mid + 1, m_hi, best_c, c_hi)

    if candidates:
        solve(1, n, 0, len(candidates) - 1)


def select_chord_fast(problem: SelectionProblem) -> SelectionResult:
    """Optimal selection via the fast algorithm of Section V-B
    (``O(n (b + k log b) log n)``-flavoured; see module docstring).

    Does not accept QoS bounds — use :func:`select_chord_dp` for those.
    """
    if problem.delay_bounds:
        raise ConfigurationError("fast solver does not support delay bounds; use select_chord_dp")
    inst = _normalize(problem)
    n = inst.n
    oracle = _SpanOracle(inst)
    current = _base_costs(inst)
    candidates = [index + 1 for index in range(n) if inst.candidate_flags[index]]
    k_eff = min(problem.k, len(candidates))
    parents: list[list[int]] = [[0] * (n + 1)]
    for _layer in range(k_eff):
        previous = current
        current = list(previous)
        parent_row = [0] * (n + 1)
        _solve_layer_dc(oracle, previous, candidates, current, parent_row)
        parents.append(parent_row)
    chosen = _reconstruct(parents, k_eff, n)
    return _result(problem, inst, chosen, current[n], "chord-fast")


def select_chord(problem: SelectionProblem) -> SelectionResult:
    """Solve a Chord selection problem with the appropriate algorithm:
    the quadratic DP for QoS-constrained or tiny instances, the fast
    divide-and-conquer solver otherwise."""
    if problem.delay_bounds or len(problem.frequencies) <= 32:
        return select_chord_dp(problem)
    return select_chord_fast(problem)
