"""QoS classes: named service levels mapped onto per-peer delay bounds.

The paper (Sections I and IV-D) motivates QoS-aware selection with
"real-time applications that require certain queries to be answered within
a fixed time period and hence within a certain number of hops", naming
VoIP, IPTV and video-on-demand, and supports "multiple QoS classes".

The selection algorithms take raw ``{peer: max_hops}`` bounds; this module
provides the operator-facing layer on top: define classes once
(e.g. ``voip -> 2 hops``, ``iptv -> 3 hops``), assign peers to classes,
and materialize the bounds for a :class:`~repro.core.types.SelectionProblem`.
It also estimates, per class, whether the bounds are even representable
given the id space (a bound of ``x`` hops needs ``x >= 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.types import SelectionProblem
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace

__all__ = ["QosClass", "QosPolicy"]


@dataclass(frozen=True)
class QosClass:
    """A named service level: lookups must finish within ``max_hops``."""

    name: str
    max_hops: int
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("QoS class needs a non-empty name")
        if not isinstance(self.max_hops, int) or self.max_hops < 1:
            raise ConfigurationError(
                f"max_hops for class {self.name!r} must be an int >= 1, got {self.max_hops!r}"
            )


@dataclass
class QosPolicy:
    """A set of QoS classes plus peer assignments.

    Example
    -------
    >>> policy = QosPolicy()
    >>> policy.add_class(QosClass("voip", max_hops=2))
    >>> policy.assign(0xF0F0, "voip")
    >>> policy.bounds()
    {61680: 2}
    """

    classes: dict[str, QosClass] = field(default_factory=dict)
    assignments: dict[int, str] = field(default_factory=dict)

    def add_class(self, qos_class: QosClass) -> None:
        """Register a class (replacing any previous same-named class)."""
        self.classes[qos_class.name] = qos_class

    def assign(self, peer: int, class_name: str) -> None:
        """Put ``peer`` into a class. A peer holds at most one class; the
        tightest requirement should be expressed as its class."""
        if class_name not in self.classes:
            raise ConfigurationError(f"unknown QoS class {class_name!r}")
        self.assignments[peer] = class_name

    def unassign(self, peer: int) -> None:
        """Remove a peer's QoS requirement."""
        self.assignments.pop(peer, None)

    def bound_for(self, peer: int) -> int | None:
        """The peer's hop bound, or ``None`` when unclassified."""
        name = self.assignments.get(peer)
        if name is None:
            return None
        return self.classes[name].max_hops

    def bounds(self) -> dict[int, int]:
        """All ``{peer: max_hops}`` bounds (the selection-algorithm form)."""
        return {peer: self.classes[name].max_hops for peer, name in self.assignments.items()}

    def members(self, class_name: str) -> set[int]:
        """Peers currently assigned to ``class_name``."""
        if class_name not in self.classes:
            raise ConfigurationError(f"unknown QoS class {class_name!r}")
        return {peer for peer, name in self.assignments.items() if name == class_name}

    def apply(
        self,
        space: IdSpace,
        source: int,
        frequencies: Mapping[int, float],
        core_neighbors: frozenset[int],
        k: int,
    ) -> SelectionProblem:
        """Build a bounded :class:`SelectionProblem` for one node.

        Bounds for the source itself are dropped (a node serves its own
        items in zero hops by definition).
        """
        bounds = self.bounds()
        bounds.pop(source, None)
        return SelectionProblem(
            space=space,
            source=source,
            frequencies=frequencies,
            core_neighbors=core_neighbors,
            k=k,
            delay_bounds=bounds,
        )

    def minimum_pointers_needed(self, space: IdSpace, core_neighbors: frozenset[int]) -> int:
        """A quick lower bound on the budget: peers whose class requires a
        dedicated pointer because no core neighbor can possibly satisfy the
        bound. Useful for sizing ``k`` before running the full solver.

        The check is conservative (distance from the best core neighbor
        under the Pastry estimate); the solver remains the authority.
        """
        needed = 0
        for peer, name in self.assignments.items():
            bound = self.classes[name].max_hops
            best = min(
                (space.pastry_distance(core, peer) for core in core_neighbors),
                default=space.bits,
            )
            if 1 + best > bound:
                needed += 1
        return needed
