"""Access-frequency tracking for observed destination peers.

Section III of the paper notes that each node can maintain per-peer access
frequencies "based on past history of accesses within a time window", and
that when the number of accessed nodes is large, a node may instead keep
the top-``n`` most frequent peers using standard streaming algorithms
(reference [3]).

This module provides three interchangeable trackers:

* :class:`ExactFrequencyTable` — a plain counter, optionally bounded by a
  sliding window of the most recent observations.
* :class:`SpaceSavingSketch` — the Space-Saving algorithm (Metwally,
  Agrawal, El Abbadi 2005): ``n`` counters, deterministic over-estimates
  with error at most ``N / n``.
* :class:`LossyCountingSketch` — Manku & Motwani's Lossy Counting with
  bucket-based pruning.

All trackers expose the same small interface (:class:`FrequencyTracker`):
``observe(peer, weight)`` and ``snapshot(limit)`` returning a
``{peer: estimated_frequency}`` mapping suitable for building a
:class:`repro.core.types.SelectionProblem`.
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from typing import Iterable, Protocol

from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive_int

__all__ = [
    "FrequencyTracker",
    "ExactFrequencyTable",
    "SpaceSavingSketch",
    "LossyCountingSketch",
]


class FrequencyTracker(Protocol):
    """Protocol implemented by all frequency trackers."""

    def observe(self, peer: int, weight: float = 1.0) -> None:
        """Record that a query was answered by ``peer``."""
        ...

    def snapshot(self, limit: int | None = None) -> dict[int, float]:
        """Return the current ``{peer: frequency}`` estimates.

        ``limit`` keeps only the ``limit`` most frequent peers (ties broken
        by peer id for determinism).
        """
        ...


def _top_items(estimates: dict[int, float], limit: int | None) -> dict[int, float]:
    """Keep the ``limit`` highest-frequency entries (deterministic tie-break)."""
    if limit is None or len(estimates) <= limit:
        return dict(estimates)
    top = heapq.nlargest(limit, estimates.items(), key=lambda kv: (kv[1], -kv[0]))
    return dict(top)


class ExactFrequencyTable:
    """Exact per-peer counts, optionally over a sliding observation window.

    Parameters
    ----------
    window:
        When given, only the most recent ``window`` observations contribute;
        older ones are evicted FIFO. ``None`` keeps everything. A window
        models the paper's "past history of accesses within a time window".
    """

    def __init__(self, window: int | None = None) -> None:
        if window is not None:
            require_positive_int(window, "window")
        self.window = window
        self._counts: Counter[int] = Counter()
        self._history: deque[tuple[int, float]] = deque()
        self._total = 0.0

    def observe(self, peer: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ConfigurationError(f"weight must be non-negative, got {weight!r}")
        self._counts[peer] += weight
        self._total += weight
        if self.window is not None:
            self._history.append((peer, weight))
            while len(self._history) > self.window:
                old_peer, old_weight = self._history.popleft()
                self._counts[old_peer] -= old_weight
                self._total -= old_weight
                if self._counts[old_peer] <= 0:
                    del self._counts[old_peer]

    def observe_many(self, peers: Iterable[int]) -> None:
        """Record a unit observation for each peer in ``peers``."""
        for peer in peers:
            self.observe(peer)

    def forget(self, peer: int) -> None:
        """Drop all state for ``peer`` (e.g. after it leaves the overlay)."""
        removed = self._counts.pop(peer, 0.0)
        self._total -= removed
        if self.window is not None and removed:
            self._history = deque(entry for entry in self._history if entry[0] != peer)

    @property
    def total(self) -> float:
        """Total observed weight currently inside the window."""
        return self._total

    def frequency(self, peer: int) -> float:
        """Current count for ``peer`` (0.0 when unseen)."""
        return float(self._counts.get(peer, 0.0))

    def snapshot(self, limit: int | None = None) -> dict[int, float]:
        return _top_items({peer: float(count) for peer, count in self._counts.items()}, limit)

    def __len__(self) -> int:
        return len(self._counts)


class SpaceSavingSketch:
    """Space-Saving top-``n`` frequency estimation.

    Maintains at most ``capacity`` monitored peers. When a new peer arrives
    at full capacity, the peer with the minimum counter is replaced and the
    newcomer inherits that minimum as its error bound. Estimated counts
    over-estimate true counts by at most ``total / capacity``.
    """

    def __init__(self, capacity: int) -> None:
        require_positive_int(capacity, "capacity")
        self.capacity = capacity
        self._counts: dict[int, float] = {}
        self._errors: dict[int, float] = {}
        self._total = 0.0

    def observe(self, peer: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ConfigurationError(f"weight must be non-negative, got {weight!r}")
        self._total += weight
        if peer in self._counts:
            self._counts[peer] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[peer] = weight
            self._errors[peer] = 0.0
            return
        victim = min(self._counts, key=lambda p: (self._counts[p], p))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[peer] = floor + weight
        self._errors[peer] = floor

    def forget(self, peer: int) -> None:
        """Stop monitoring ``peer`` entirely."""
        self._counts.pop(peer, None)
        self._errors.pop(peer, None)

    @property
    def total(self) -> float:
        """Total observed weight (including weight attributed to evicted peers)."""
        return self._total

    def frequency(self, peer: int) -> float:
        """Estimated (over-)count for ``peer``; 0.0 when unmonitored."""
        return self._counts.get(peer, 0.0)

    def error_bound(self, peer: int) -> float:
        """Maximum over-estimation for ``peer`` (its inherited floor)."""
        return self._errors.get(peer, 0.0)

    def guaranteed_top(self) -> list[int]:
        """Peers whose estimated count minus error exceeds some other estimate,
        i.e. peers guaranteed to be among the true top items."""
        if not self._counts:
            return []
        ordered = sorted(self._counts, key=lambda p: (-self._counts[p], p))
        result = []
        for index, peer in enumerate(ordered[:-1]):
            next_estimate = self._counts[ordered[index + 1]]
            if self._counts[peer] - self._errors[peer] >= next_estimate:
                result.append(peer)
            else:
                break
        return result

    def snapshot(self, limit: int | None = None) -> dict[int, float]:
        return _top_items(dict(self._counts), limit)

    def __len__(self) -> int:
        return len(self._counts)


class LossyCountingSketch:
    """Lossy Counting (Manku & Motwani 2002) over unit-weight observations.

    Splits the stream into buckets of width ``ceil(1 / epsilon)``; at each
    bucket boundary, entries whose count plus bucket slack falls below the
    current bucket id are pruned. Estimates under-count by at most
    ``epsilon * N``.
    """

    def __init__(self, epsilon: float = 0.001) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon!r}")
        self.epsilon = epsilon
        self.bucket_width = max(1, int(1.0 / epsilon))
        self._counts: dict[int, float] = {}
        self._deltas: dict[int, int] = {}
        self._seen = 0
        self._bucket = 1

    def observe(self, peer: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ConfigurationError(f"weight must be non-negative, got {weight!r}")
        self._seen += 1
        if peer in self._counts:
            self._counts[peer] += weight
        else:
            self._counts[peer] = weight
            self._deltas[peer] = self._bucket - 1
        if self._seen % self.bucket_width == 0:
            self._prune()
            self._bucket += 1

    def _prune(self) -> None:
        doomed = [peer for peer, count in self._counts.items() if count + self._deltas[peer] <= self._bucket]
        for peer in doomed:
            del self._counts[peer]
            del self._deltas[peer]

    def forget(self, peer: int) -> None:
        """Drop state for ``peer``."""
        self._counts.pop(peer, None)
        self._deltas.pop(peer, None)

    @property
    def total(self) -> int:
        """Number of observations consumed so far."""
        return self._seen

    def frequency(self, peer: int) -> float:
        """Estimated count for ``peer`` (an under-estimate; 0.0 when pruned)."""
        return self._counts.get(peer, 0.0)

    def snapshot(self, limit: int | None = None) -> dict[int, float]:
        return _top_items(dict(self._counts), limit)

    def __len__(self) -> int:
        return len(self._counts)
