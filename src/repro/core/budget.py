"""Global cache-budget allocation: heterogeneous per-node ``k`` (DESIGN.md §12).

The paper fixes the auxiliary budget uniformly — every node gets the same
``k`` — and leaves globally-aware selection open (Section VII). This
module closes the simplest half of that gap: keep the paper's *local*
selection algorithms untouched, but distribute one network-wide pointer
budget ``K`` across nodes **non-uniformly**, by marginal gain.

Each node ``i`` has a cost curve ``C_i(k)`` — the eq.-1 optimum its local
selector achieves with ``k`` pointers. ``C_i`` is non-increasing in ``k``
(the checked ``selection.monotone_k`` invariant), so marginal gains
``g_i(k) = C_i(k) - C_i(k+1)`` are non-negative, and for the three
overlays here they are also non-increasing in ``k`` (the curves are
convex; see DESIGN.md §12 for the argument — Lemma 4.1 greedy chains on
the prefix metrics, the Monge condition of the Chord interval DP). Under
convexity the greedy rule "give the next pointer to the node whose next
pointer helps most" is *exact*: a lazy max-heap over the current gains
yields the optimal split of ``K``, at ``n + K`` local-selector calls
(each curve value is computed only when its node reaches the heap top).

:func:`allocate_brute_force` enumerates every feasible split on tiny
instances — the differential oracle the Hypothesis suite pins the heap
against. :func:`allocate_uniform` spreads the same ``K`` evenly (the
paper's scheme, generalized to budgets that do not divide ``n``) so the
two strategies are comparable at *equal total budget*.

:class:`BudgetRebalancer` keeps an allocation live under drifting
workloads: per-node :class:`~repro.core.drift.DriftDetector` instances
flag nodes whose frequency snapshot moved, and a bounded number of
single-pointer moves per round flows budget from the node whose *last*
pointer is worth least to the node whose *next* pointer is worth most.
Moves conserve the total, so ``budget.feasibility`` (Σ k_i == spent)
holds at every round boundary.

Everything is overlay-generic: Chord, Pastry and Kademlia all express
selection through :class:`~repro.core.types.SelectionProblem`, so the
allocator composes with the existing selectors unchanged.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core import chord_selection, kademlia_selection, pastry_selection
from repro.core.drift import DriftDetector
from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError
from repro.util.validation import require_non_negative_int

__all__ = [
    "BudgetAllocation",
    "BudgetRebalancer",
    "CostCurve",
    "allocate_brute_force",
    "allocate_greedy",
    "allocate_overlay",
    "allocate_uniform",
    "core_neighbors_of",
    "curves_for_problems",
    "install_allocation",
    "overlay_problems",
    "selector_for",
]

OVERLAYS = ("chord", "pastry", "kademlia")

#: Brute-force enumeration explodes combinatorially; refuse instances the
#: oracle was never meant for (tests stay below this).
_BRUTE_MAX_NODES = 6
_BRUTE_MAX_TOTAL = 10

#: Two marginal gains closer than this are treated as tied (float sums of
#: Zipf weights accumulate rounding; matches the verify-plane tolerance).
_GAIN_EPS = 1e-9


def selector_for(overlay: str) -> Callable[[SelectionProblem], SelectionResult]:
    """The overlay's production local selector (dispatching DP/fast).

    Resolved through the selection modules' attributes so monkeypatched
    solvers propagate into allocation, exactly as the verify plane's
    mutation tests rely on.
    """
    if overlay == "chord":
        return chord_selection.select_chord
    if overlay == "pastry":
        return pastry_selection.select_pastry
    if overlay == "kademlia":
        return kademlia_selection.select_kademlia
    raise ConfigurationError(f"unknown overlay {overlay!r}; expected one of {OVERLAYS}")


class CostCurve:
    """One node's lazy cost curve ``C(k)`` with memoized selector calls.

    ``load`` scales the curve by the node's query rate: a node issuing
    twice the traffic values each saved hop twice as much, so its curve —
    and therefore its marginal gains — carries twice the weight in the
    network-wide objective. Positive scaling preserves monotonicity and
    convexity, so greedy exactness is unaffected.
    """

    __slots__ = ("problem", "overlay", "load", "_selector", "_results")

    def __init__(
        self,
        problem: SelectionProblem,
        overlay: str,
        load: float = 1.0,
    ) -> None:
        if not (load > 0):
            raise ConfigurationError(f"load must be positive, got {load!r}")
        self.problem = problem
        self.overlay = overlay
        self.load = load
        self._selector = selector_for(overlay)
        self._results: dict[int, SelectionResult] = {}

    @property
    def capacity(self) -> int:
        """Largest useful budget: the candidate-pool size."""
        return len(self.problem.candidates)

    def result(self, k: int) -> SelectionResult:
        """The local selection at budget ``k`` (memoized)."""
        require_non_negative_int(k, "k")
        k = min(k, self.capacity)
        cached = self._results.get(k)
        if cached is None:
            cached = self._selector(self.problem.with_k(k))
            self._results[k] = cached
        return cached

    def cost(self, k: int) -> float:
        """Load-weighted optimal eq.-1 cost at budget ``k``."""
        return self.load * self.result(k).cost

    def gain(self, k: int) -> float:
        """Marginal gain of the ``k+1``-th pointer, clamped non-negative."""
        if k >= self.capacity:
            return 0.0
        return max(0.0, self.cost(k) - self.cost(k + 1))


@dataclass
class BudgetAllocation:
    """One split of a total pointer budget across nodes.

    ``quotas[node]`` is the node's per-node ``k``; ``costs[node]`` the
    (load-weighted) local-optimum cost the curve reports at that quota.
    ``spent`` can fall short of ``total`` only when the candidate pools
    cannot absorb the whole budget.
    """

    total: int
    quotas: dict[int, int]
    costs: dict[int, float]
    algorithm: str

    @property
    def spent(self) -> int:
        return sum(self.quotas.values())

    @property
    def total_cost(self) -> float:
        """Network-wide predicted cost: Σ_i C_i(k_i) (eq. 1 summed over
        sources — the same quantity ``network_cost`` re-derives from an
        installed overlay)."""
        return sum(self.costs.values())

    def quota(self, node_id: int) -> int:
        return self.quotas.get(node_id, 0)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "total": self.total,
            "spent": self.spent,
            "total_cost": self.total_cost,
            "quotas": {str(node): k for node, k in sorted(self.quotas.items())},
        }


def curves_for_problems(
    problems: Mapping[int, SelectionProblem],
    overlay: str,
    loads: Mapping[int, float] | None = None,
) -> dict[int, CostCurve]:
    """Build one curve per node; ``loads`` optionally weights them."""
    return {
        node: CostCurve(
            problem, overlay, load=1.0 if loads is None else loads.get(node, 1.0)
        )
        for node, problem in problems.items()
    }


def _capacity_total(curves: Mapping[int, CostCurve]) -> int:
    return sum(curve.capacity for curve in curves.values())


def allocate_greedy(curves: Mapping[int, CostCurve], total: int) -> BudgetAllocation:
    """Exact marginal-gain allocation of ``total`` pointers.

    A lazy max-heap over the nodes' current marginal gains: pop the node
    whose next pointer saves the most expected hops, grant it, push its
    following gain. Ties break toward the smaller node id, making the
    allocation a pure function of the curves — and because the greedy
    chain is incremental, allocations **nest**: the budget-``K`` split is
    the budget-``K+1`` split minus its last grant.

    Exactness relies on per-node convexity (gains non-increasing in k);
    see the module docstring and DESIGN.md §12.
    """
    require_non_negative_int(total, "total")
    quotas = {node: 0 for node in curves}
    # (negated gain, node id, next quota): heapq is a min-heap, so the
    # largest gain — smallest id on ties — pops first.
    heap: list[tuple[float, int, int]] = []
    for node in sorted(curves):
        if curves[node].capacity > 0:
            heap.append((-curves[node].gain(0), node, 1))
    heapq.heapify(heap)
    spent = 0
    while spent < total and heap:
        __, node, quota = heapq.heappop(heap)
        quotas[node] = quota
        spent += 1
        curve = curves[node]
        if quota < curve.capacity:
            heapq.heappush(heap, (-curve.gain(quota), node, quota + 1))
    costs = {node: curves[node].cost(quotas[node]) for node in curves}
    return BudgetAllocation(total=total, quotas=quotas, costs=costs, algorithm="greedy")


def allocate_uniform(curves: Mapping[int, CostCurve], total: int) -> BudgetAllocation:
    """The paper's uniform scheme at total budget ``total``.

    ``total // n`` each, remainder granted one-per-node in ascending id
    order; per-node capacity clamps redistribute deterministically so the
    uniform baseline spends exactly as much of the budget as it can.
    """
    require_non_negative_int(total, "total")
    nodes = sorted(curves)
    quotas = {node: 0 for node in nodes}
    if nodes:
        remaining = min(total, _capacity_total(curves))
        while remaining > 0:
            # Round-robin one pointer at a time; capacity-saturated nodes
            # drop out. Terminates: every pass grants at least one.
            granted = False
            for node in nodes:
                if remaining == 0:
                    break
                if quotas[node] < curves[node].capacity:
                    quotas[node] += 1
                    remaining -= 1
                    granted = True
            if not granted:
                break
    costs = {node: curves[node].cost(quotas[node]) for node in nodes}
    return BudgetAllocation(total=total, quotas=quotas, costs=costs, algorithm="uniform")


def allocate_brute_force(
    curves: Mapping[int, CostCurve], total: int
) -> BudgetAllocation:
    """Enumerate every feasible split — ground truth for tiny instances.

    Spends ``min(total, Σ capacity)`` exactly (matching the greedy
    allocator) and returns the minimum-cost split, tie-broken toward the
    lexicographically smallest quota vector in ascending node-id order.
    """
    require_non_negative_int(total, "total")
    nodes = sorted(curves)
    if len(nodes) > _BRUTE_MAX_NODES or total > _BRUTE_MAX_TOTAL:
        raise ConfigurationError(
            f"brute-force allocation is an oracle for tiny instances only "
            f"(n <= {_BRUTE_MAX_NODES}, total <= {_BRUTE_MAX_TOTAL}); "
            f"got n={len(nodes)}, total={total}"
        )
    spend = min(total, _capacity_total(curves))
    best_cost = float("inf")
    best: tuple[int, ...] | None = None

    def recurse(index: int, remaining: int, prefix: tuple[int, ...], cost: float) -> None:
        nonlocal best_cost, best
        if index == len(nodes):
            if remaining == 0 and (
                cost < best_cost - _GAIN_EPS
                or (abs(cost - best_cost) <= _GAIN_EPS and (best is None or prefix < best))
            ):
                best_cost = cost
                best = prefix
            return
        curve = curves[nodes[index]]
        tail_capacity = sum(curves[node].capacity for node in nodes[index + 1 :])
        for quota in range(min(remaining, curve.capacity), -1, -1):
            if remaining - quota > tail_capacity:
                continue
            recurse(index + 1, remaining - quota, prefix + (quota,), cost + curve.cost(quota))

    recurse(0, spend, (), 0.0)
    assert best is not None  # spend <= total capacity, so a split exists
    quotas = dict(zip(nodes, best))
    costs = {node: curves[node].cost(quotas[node]) for node in nodes}
    return BudgetAllocation(total=total, quotas=quotas, costs=costs, algorithm="brute-force")


# ----------------------------------------------------------------------
# Overlay adapters
# ----------------------------------------------------------------------


def core_neighbors_of(overlay_kind: str, overlay, node_id: int) -> frozenset[int]:
    """The node's budget-free pointers, per overlay (matches what each
    overlay's ``recompute_auxiliary`` feeds its SelectionProblem)."""
    node = overlay.node(node_id)
    if overlay_kind == "chord":
        return frozenset(node.core | set(node.successors))
    if overlay_kind == "kademlia":
        return frozenset(node.core)
    if overlay_kind == "pastry":
        return frozenset(node.core | node.leaves)
    raise ConfigurationError(
        f"unknown overlay {overlay_kind!r}; expected one of {OVERLAYS}"
    )


def overlay_problems(
    overlay_kind: str,
    overlay,
    frequency_limit: int | None = None,
) -> dict[int, SelectionProblem]:
    """One ``k=0`` selection problem per live node with observed peers.

    These are exactly the problems ``recompute_auxiliary`` would solve —
    same frequency snapshot, same core set — so curve costs coincide
    with what installation at the allocated quota will achieve.
    """
    problems: dict[int, SelectionProblem] = {}
    for node_id in overlay.alive_ids():
        frequencies = overlay.node(node_id).frequency_snapshot(frequency_limit)
        if not frequencies:
            continue
        problems[node_id] = SelectionProblem(
            space=overlay.space,
            source=node_id,
            frequencies=frequencies,
            core_neighbors=core_neighbors_of(overlay_kind, overlay, node_id),
            k=0,
        )
    return problems


def allocate_overlay(
    overlay_kind: str,
    overlay,
    total: int,
    frequency_limit: int | None = None,
    loads: Mapping[int, float] | None = None,
) -> BudgetAllocation:
    """Greedy allocation of ``total`` pointers across one live overlay."""
    problems = overlay_problems(overlay_kind, overlay, frequency_limit)
    curves = curves_for_problems(problems, overlay_kind, loads)
    return allocate_greedy(curves, total)


def install_allocation(
    overlay,
    allocation: BudgetAllocation,
    policy,
    rng: random.Random,
    frequency_limit: int | None = None,
) -> None:
    """Install per-node quotas through the overlay's own recompute path
    (ascending node order — the same order ``recompute_all_auxiliary``
    walks, so policy RNG draws are reproducible)."""
    for node_id in overlay.alive_ids():
        overlay.recompute_auxiliary(
            node_id, allocation.quota(node_id), policy, rng, frequency_limit
        )


# ----------------------------------------------------------------------
# Incremental rebalancing under drift
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BudgetMove:
    """One unit of budget flowing donor -> receiver with its net gain."""

    donor: int
    receiver: int
    gain: float


@dataclass
class BudgetRebalancer:
    """Keeps an allocation current as workloads drift, bounded per round.

    Round protocol (the churn runner's periodic rebalance task):

    1. score every live node's current frequency snapshot against the
       snapshot its quota was last computed from (:class:`DriftDetector`);
    2. if no node drifts past ``threshold``, do nothing — the allocation
       is still justified;
    3. otherwise perform up to ``max_moves`` single-pointer moves, each
       from the node whose *last* pointer is currently worth least to the
       node whose *next* pointer is worth most, stopping early when no
       move improves the predicted network cost;
    4. rebase the detectors of every node that drifted or moved.

    Moves conserve the spent total, so the ``budget.feasibility``
    invariant holds between rounds. The quotas dict is shared by
    reference with the runner's periodic recompute tasks: a move takes
    effect at the affected nodes' next recomputation.
    """

    quotas: dict[int, int]
    max_moves: int = 4
    threshold: float = 0.15
    metric: str = "l1"
    moves_applied: int = 0
    rounds: int = 0
    _detectors: dict[int, DriftDetector] = field(default_factory=dict)

    @classmethod
    def from_allocation(
        cls,
        allocation: BudgetAllocation,
        max_moves: int = 4,
        threshold: float = 0.15,
        metric: str = "l1",
    ) -> "BudgetRebalancer":
        return cls(
            quotas=allocation.quotas,
            max_moves=max_moves,
            threshold=threshold,
            metric=metric,
        )

    def baseline(self, problems: Mapping[int, SelectionProblem]) -> None:
        """Rebase every node's detector on its allocation-time snapshot,
        so the first rebalance round only fires on *subsequent* drift.
        The selected set is left empty — the default ``l1`` metric scores
        frequency movement only; callers using the ``coverage`` metric
        should rebase detectors individually with real selections."""
        for node_id, problem in problems.items():
            self._detector(node_id).rebase(problem.frequencies, ())

    def _detector(self, node_id: int) -> DriftDetector:
        detector = self._detectors.get(node_id)
        if detector is None:
            detector = DriftDetector(self.metric)
            self._detectors[node_id] = detector
        return detector

    def _drifted(self, problems: Mapping[int, SelectionProblem]) -> list[int]:
        drifted = []
        for node_id in sorted(problems):
            if node_id not in self._detectors:
                drifted.append(node_id)  # never baselined: treat as stale
                continue
            score = self._detectors[node_id].score(problems[node_id].frequencies)
            if score >= self.threshold:
                drifted.append(node_id)
        return drifted

    def rebalance(
        self,
        problems: Mapping[int, SelectionProblem],
        overlay_kind: str,
        loads: Mapping[int, float] | None = None,
        telemetry=None,
    ) -> list[BudgetMove]:
        """One bounded rebalancing round; returns the applied moves."""
        self.rounds += 1
        drifted = self._drifted(problems)
        if telemetry is not None:
            telemetry.record_budget("round")
        if not drifted:
            if telemetry is not None:
                telemetry.record_budget("skipped")
            return []
        curves = curves_for_problems(problems, overlay_kind, loads)
        moves: list[BudgetMove] = []
        touched: set[int] = set(drifted)
        for __ in range(self.max_moves):
            move = self._best_move(curves)
            if move is None:
                break
            self.quotas[move.donor] = self.quotas.get(move.donor, 0) - 1
            self.quotas[move.receiver] = self.quotas.get(move.receiver, 0) + 1
            touched.update((move.donor, move.receiver))
            moves.append(move)
        self.moves_applied += len(moves)
        if telemetry is not None and moves:
            telemetry.record_budget("moves", len(moves))
        for node_id in sorted(touched):
            problem = problems.get(node_id)
            if problem is None:
                continue
            quota = self.quotas.get(node_id, 0)
            selected = curves[node_id].result(quota).auxiliary if node_id in curves else ()
            self._detector(node_id).rebase(problem.frequencies, selected)
        return moves

    def _best_move(self, curves: Mapping[int, CostCurve]) -> BudgetMove | None:
        donor = None
        donor_gain = float("inf")
        receiver = None
        receiver_gain = -float("inf")
        for node_id in sorted(curves):
            quota = self.quotas.get(node_id, 0)
            curve = curves[node_id]
            if quota > 0:
                last = curve.gain(quota - 1)  # value of the pointer it would give up
                if last < donor_gain - _GAIN_EPS:
                    donor, donor_gain = node_id, last
            if quota < curve.capacity:
                nxt = curve.gain(quota)  # value of the pointer it would receive
                if nxt > receiver_gain + _GAIN_EPS:
                    receiver, receiver_gain = node_id, nxt
        if donor is None or receiver is None or donor == receiver:
            return None
        net = receiver_gain - donor_gain
        if net <= _GAIN_EPS:
            return None
        return BudgetMove(donor=donor, receiver=receiver, gain=net)
