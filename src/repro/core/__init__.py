"""The paper's primary contribution: frequency-aware auxiliary-neighbor
selection for Pastry (Section IV) and Chord (Section V), plus the
frequency trackers and baselines the algorithms are evaluated against."""

from repro.core.chord_selection import select_chord, select_chord_dp, select_chord_fast
from repro.core.cost import (
    brute_force_optimal,
    chord_cost,
    chord_cost_scalar,
    chord_cost_vectorized,
    chord_peer_distance,
    chord_sorted_offsets,
    evaluate,
    pastry_cost,
    pastry_cost_scalar,
    pastry_cost_vectorized,
    pastry_peer_distance,
)
from repro.core.frequency import (
    ExactFrequencyTable,
    FrequencyTracker,
    LossyCountingSketch,
    SpaceSavingSketch,
)
from repro.core.oblivious import (
    select_chord_oblivious,
    select_pastry_oblivious,
    select_uniform_random,
)
from repro.core.pastry_selection import (
    IncrementalPastrySelector,
    select_pastry,
    select_pastry_dp,
    select_pastry_greedy,
)
from repro.core.trie import PeerTrie, TrieVertex
from repro.core.types import SelectionProblem, SelectionResult

__all__ = [
    "ExactFrequencyTable",
    "FrequencyTracker",
    "IncrementalPastrySelector",
    "LossyCountingSketch",
    "PeerTrie",
    "SelectionProblem",
    "SelectionResult",
    "SpaceSavingSketch",
    "TrieVertex",
    "brute_force_optimal",
    "chord_cost",
    "chord_cost_scalar",
    "chord_cost_vectorized",
    "chord_peer_distance",
    "chord_sorted_offsets",
    "evaluate",
    "pastry_cost",
    "pastry_cost_scalar",
    "pastry_cost_vectorized",
    "pastry_peer_distance",
    "select_chord",
    "select_chord_dp",
    "select_chord_fast",
    "select_chord_oblivious",
    "select_pastry",
    "select_pastry_dp",
    "select_pastry_greedy",
    "select_pastry_oblivious",
    "select_uniform_random",
]
