"""Path-compressed binary trie over peer identifiers (paper Section IV).

The Pastry selection algorithms view the observed peers ``V`` (plus the
core neighbors) as leaves of a binary trie of their ids. The paper uses an
uncompressed trie with ``O(n b)`` vertices; we path-compress unary chains
into single edges carrying a ``length`` multiplier, which yields exactly
the same dynamic-programming values with only ``O(n)`` vertices (a chain of
unary vertices above a subtree contributes ``length * F(subtree)`` to the
cost when the subtree holds no pointer, and nothing otherwise — identical
to summing the per-edge indicator terms of eq. 2).

Vertices carry the aggregates the selection layer needs:

* ``frequency_sum`` — ``F(T_a)``, total access frequency below the vertex,
* ``has_core`` — whether any core neighbor lies below,
* ``eligible_count`` — number of leaves that may be picked as auxiliary
  neighbors (observed peers that are not core neighbors),
* ``required`` — QoS marker: the subtree must end up containing a pointer.

The trie supports incremental maintenance (Section IV-C): inserts, removes
and frequency updates touch only one root-to-leaf path and report it via
``on_path_change`` so the selection layer can refresh its memoized cost
tables bottom-up in ``O(b k)``.

A vertex's ``prefix`` holds its first ``depth`` bits right-aligned; for a
leaf (``depth == bits``) that is the full peer id.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace

__all__ = ["TrieVertex", "PeerTrie"]


class TrieVertex:
    """One vertex of the compressed trie."""

    __slots__ = (
        "depth",
        "prefix",
        "parent",
        "children",
        "peer",
        "frequency",
        "is_core",
        "required",
        "frequency_sum",
        "has_core",
        "eligible_count",
        "memo",
    )

    def __init__(self, depth: int, prefix: int, parent: "TrieVertex | None") -> None:
        self.depth = depth
        self.prefix = prefix
        self.parent = parent
        self.children: dict[int, TrieVertex] = {}
        self.peer: int | None = None
        self.frequency = 0.0
        self.is_core = False
        self.required = False
        self.frequency_sum = 0.0
        self.has_core = False
        self.eligible_count = 0
        #: Scratch slot for the selection layer's memoized cost tables.
        self.memo: object | None = None

    @property
    def is_leaf(self) -> bool:
        """True for vertices carrying a peer payload."""
        return self.peer is not None

    def edge_length(self) -> int:
        """Number of uncompressed trie edges between this vertex and its parent."""
        if self.parent is None:
            return 0
        return self.depth - self.parent.depth

    def bit_within_prefix(self, position: int) -> int:
        """Bit of this vertex's prefix at absolute position ``position``
        (counted from the most-significant bit of the full id)."""
        return (self.prefix >> (self.depth - position - 1)) & 1

    def child_order(self) -> list["TrieVertex"]:
        """Children in deterministic bit order (0 before 1)."""
        return [self.children[bit] for bit in sorted(self.children)]

    def refresh_aggregates(self) -> None:
        """Recompute subtree aggregates from the immediate children
        (or, for a leaf, from its payload)."""
        if self.is_leaf:
            self.frequency_sum = self.frequency
            self.has_core = self.is_core
            self.eligible_count = 0 if self.is_core else 1
            return
        self.frequency_sum = sum(child.frequency_sum for child in self.children.values())
        self.has_core = any(child.has_core for child in self.children.values())
        self.eligible_count = sum(child.eligible_count for child in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"leaf peer={self.peer}" if self.is_leaf else f"internal children={len(self.children)}"
        return f"<TrieVertex depth={self.depth} prefix={self.prefix:b} {kind}>"


class PeerTrie:
    """Compressed binary trie over peer ids with incremental maintenance.

    Parameters
    ----------
    space:
        Identifier space the peer ids live in; fixes the trie depth.
    on_path_change:
        Optional callback invoked after every structural or payload change
        with the affected root-to-leaf path, ordered leaf-first. The
        selection layer uses it to refresh memoized DP tables bottom-up
        (Section IV-C).
    """

    def __init__(
        self,
        space: IdSpace,
        on_path_change: Callable[[list[TrieVertex]], None] | None = None,
    ) -> None:
        self.space = space
        self.root = TrieVertex(0, 0, None)
        self._leaves: dict[int, TrieVertex] = {}
        self.on_path_change = on_path_change

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, peer: int) -> bool:
        return peer in self._leaves

    def leaf(self, peer: int) -> TrieVertex:
        """Return the leaf for ``peer`` (raises ``KeyError`` when absent)."""
        return self._leaves[peer]

    def leaves(self) -> Iterator[TrieVertex]:
        """Iterate all leaves in ascending peer-id order."""
        for peer in sorted(self._leaves):
            yield self._leaves[peer]

    def total_frequency(self) -> float:
        """Sum of all leaf frequencies."""
        return self.root.frequency_sum

    def postorder(self) -> Iterator[TrieVertex]:
        """Iterate all vertices children-first (for bottom-up passes)."""
        stack: list[tuple[TrieVertex, bool]] = [(self.root, False)]
        while stack:
            vertex, expanded = stack.pop()
            if expanded or vertex.is_leaf:
                yield vertex
                continue
            stack.append((vertex, True))
            for child in vertex.child_order():
                stack.append((child, False))

    def path_to_root(self, vertex: TrieVertex) -> list[TrieVertex]:
        """Vertices from ``vertex`` up to and including the root."""
        path = []
        current: TrieVertex | None = vertex
        while current is not None:
            path.append(current)
            current = current.parent
        return path

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, peer: int, frequency: float = 0.0, is_core: bool = False) -> TrieVertex:
        """Insert (or update) ``peer``; returns its leaf.

        Re-inserting an existing peer overwrites its frequency; the
        ``is_core`` flag is OR-ed so a queried core neighbor keeps both
        roles.
        """
        self.space.validate(peer, "peer id")
        if frequency < 0:
            raise ConfigurationError(f"frequency must be non-negative, got {frequency!r}")
        existing = self._leaves.get(peer)
        if existing is not None:
            existing.frequency = frequency
            existing.is_core = existing.is_core or is_core
            self._bubble_up(existing)
            return existing
        leaf = self._insert_new(peer)
        leaf.frequency = frequency
        leaf.is_core = is_core
        self._leaves[peer] = leaf
        self._bubble_up(leaf)
        return leaf

    def update_frequency(self, peer: int, frequency: float) -> None:
        """Set the access frequency of an existing peer (Section IV-C)."""
        if frequency < 0:
            raise ConfigurationError(f"frequency must be non-negative, got {frequency!r}")
        leaf = self._leaves[peer]
        leaf.frequency = frequency
        self._bubble_up(leaf)

    def add_frequency(self, peer: int, delta: float) -> None:
        """Add ``delta`` to the frequency of an existing peer."""
        leaf = self._leaves[peer]
        updated = leaf.frequency + delta
        if updated < 0:
            raise ConfigurationError(f"frequency for peer {peer} would become negative")
        leaf.frequency = updated
        self._bubble_up(leaf)

    def set_required(self, peer: int, max_distance: int) -> None:
        """Install the QoS constraint "``peer`` reachable within
        ``max_distance`` trie hops": the ancestor subtree of height
        ``max_distance`` containing the peer must hold a pointer
        (Section IV-D). ``max_distance = 0`` pins the leaf itself.
        """
        if max_distance < 0:
            raise ConfigurationError(f"max_distance must be >= 0, got {max_distance}")
        leaf = self._leaves[peer]
        threshold = max(self.space.bits - max_distance, 0)
        target = leaf
        # Pointer anywhere in an ancestor at depth >= threshold satisfies
        # the bound; the shallowest such ancestor's subtree contains all
        # deeper ones, so marking it captures the whole constraint.
        while target.parent is not None and target.parent.depth >= threshold:
            target = target.parent
        target.required = True
        self._notify(self.path_to_root(leaf))

    def clear_required(self) -> None:
        """Remove every QoS marker.

        Memo owners must rebuild their tables afterwards — this touches
        vertices on arbitrarily many paths, so no incremental notification
        is emitted.
        """
        for vertex in self.postorder():
            vertex.required = False

    def remove(self, peer: int) -> None:
        """Remove ``peer`` and re-compress the trie (Section IV-C)."""
        leaf = self._leaves.pop(peer)
        parent = leaf.parent
        bit = self.space.bit_at(peer, parent.depth)
        del parent.children[bit]
        if parent is not self.root and len(parent.children) == 1:
            # Splice out the now-unary vertex, merging its two edges.
            (survivor,) = parent.children.values()
            grandparent = parent.parent
            survivor.parent = grandparent
            grandparent.children[parent.bit_within_prefix(grandparent.depth)] = survivor
            # The merged subtree has the same leafset, so a QoS marker on
            # the spliced vertex migrates to the survivor.
            survivor.required = survivor.required or parent.required
            self._bubble_up(survivor)
        else:
            self._bubble_up(parent)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert_new(self, peer: int) -> TrieVertex:
        bits = self.space.bits
        current = self.root
        while True:
            bit = self.space.bit_at(peer, current.depth)
            child = current.children.get(bit)
            if child is None:
                leaf = TrieVertex(bits, peer, current)
                leaf.peer = peer
                current.children[bit] = leaf
                return leaf
            edge_bits = child.depth - current.depth
            mask = (1 << edge_bits) - 1
            id_segment = self.space.prefix(peer, child.depth) & mask
            child_segment = child.prefix & mask
            if id_segment == child_segment:
                if child.is_leaf:
                    raise ConfigurationError(f"peer {peer} already present")
                current = child
                continue
            # Split the compressed edge at the first disagreeing bit.
            agree = edge_bits - (id_segment ^ child_segment).bit_length()
            split_depth = current.depth + agree
            middle = TrieVertex(split_depth, self.space.prefix(peer, split_depth), current)
            current.children[bit] = middle
            child.parent = middle
            middle.children[child.bit_within_prefix(split_depth)] = child
            leaf = TrieVertex(bits, peer, middle)
            leaf.peer = peer
            middle.children[self.space.bit_at(peer, split_depth)] = leaf
            return leaf

    def _bubble_up(self, vertex: TrieVertex) -> None:
        path = self.path_to_root(vertex)
        for node in path:
            node.refresh_aggregates()
        self._notify(path)

    def _notify(self, path: list[TrieVertex]) -> None:
        if self.on_path_change is not None:
            self.on_path_change(path)
