"""Change-triggered recomputation of auxiliary neighbors.

Section III leaves the recomputation schedule open: "The algorithm can be
invoked either periodically or based on some criteria that determines that
the system has undergone a significant change since the previous
computation of the auxiliary neighbors."

This module implements that criterion. :class:`DriftDetector` compares the
current frequency snapshot against the snapshot used for the last
selection and reports a drift score; :class:`RecomputationTrigger` wraps it
with a threshold plus a hard minimum interval, yielding a drop-in policy
for "should this node re-run selection now?".

Two scores are offered:

* ``l1`` — total-variation distance between the *normalized* distributions
  (0 = identical, 1 = disjoint). Robust default.
* ``coverage`` — the fraction of current query mass still covered by the
  previously selected pointer set; drift is ``1 - coverage``. Cheaper and
  directly tied to what selection actually optimizes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.util.errors import ConfigurationError
from repro.util.validation import require_probability

__all__ = ["DriftDetector", "RecomputationTrigger", "l1_drift", "coverage_drift"]


def _normalize(frequencies: Mapping[int, float]) -> dict[int, float]:
    total = sum(frequencies.values())
    if total <= 0:
        return {}
    return {peer: weight / total for peer, weight in frequencies.items()}


def l1_drift(previous: Mapping[int, float], current: Mapping[int, float]) -> float:
    """Total-variation distance between two (unnormalized) distributions.

    Returns a value in [0, 1]; 0 when both are empty or identical after
    normalization, 1 when their supports are disjoint.
    """
    p = _normalize(previous)
    q = _normalize(current)
    if not p and not q:
        return 0.0
    if not p or not q:
        return 1.0
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(peer, 0.0) - q.get(peer, 0.0)) for peer in support)


def coverage_drift(
    selected: Iterable[int],
    current: Mapping[int, float],
    previous_coverage: float,
) -> float:
    """Change in query-mass coverage by the previously selected pointers.

    ``previous_coverage`` is the coverage measured at selection time; the
    returned drift is how far today's coverage has moved from it, in
    either direction, clamped to [0, 1]. The direction matters: clamping
    gains to zero (the original behaviour) reported *no* drift when query
    mass concentrated onto the selected set while the distribution
    shifted underneath it — exactly the regime where a fresh selection
    could cover even more — so :class:`RecomputationTrigger` never fired.
    A significant change in coverage either way is evidence the snapshot
    behind the last selection is stale.
    """
    total = sum(current.values())
    if total <= 0:
        return 0.0
    covered = sum(current.get(peer, 0.0) for peer in selected) / total
    return min(1.0, abs(previous_coverage - covered))


class DriftDetector:
    """Tracks the snapshot behind the last selection and scores drift."""

    def __init__(self, metric: str = "l1") -> None:
        if metric not in ("l1", "coverage"):
            raise ConfigurationError(f"unknown drift metric {metric!r}; expected 'l1' or 'coverage'")
        self.metric = metric
        self._baseline: dict[int, float] = {}
        self._selected: frozenset[int] = frozenset()
        self._baseline_coverage = 0.0

    def rebase(self, frequencies: Mapping[int, float], selected: Iterable[int]) -> None:
        """Record the snapshot a fresh selection was computed from."""
        self._baseline = dict(frequencies)
        self._selected = frozenset(selected)
        total = sum(self._baseline.values())
        if total > 0:
            self._baseline_coverage = (
                sum(self._baseline.get(peer, 0.0) for peer in self._selected) / total
            )
        else:
            self._baseline_coverage = 0.0

    def score(self, current: Mapping[int, float]) -> float:
        """Drift of ``current`` relative to the rebased snapshot, in [0, 1]."""
        if self.metric == "l1":
            return l1_drift(self._baseline, current)
        return coverage_drift(self._selected, current, self._baseline_coverage)


class RecomputationTrigger:
    """Decides when a node should re-run auxiliary selection.

    Fires when the drift score crosses ``threshold``, but never more often
    than ``min_interval`` time units apart (rate limiting the O(n k) work).

    Example
    -------
    >>> trigger = RecomputationTrigger(threshold=0.2, min_interval=10.0)
    >>> trigger.should_recompute(now=0.0, current={1: 5.0})
    True
    >>> trigger.committed(now=0.0, frequencies={1: 5.0}, selected=[1])
    >>> trigger.should_recompute(now=5.0, current={1: 5.0})
    False
    """

    def __init__(self, threshold: float = 0.15, min_interval: float = 0.0, metric: str = "l1") -> None:
        require_probability(threshold, "threshold")
        if min_interval < 0:
            raise ConfigurationError(f"min_interval must be >= 0, got {min_interval}")
        self.threshold = threshold
        self.min_interval = min_interval
        self.detector = DriftDetector(metric)
        self._last_time: float | None = None
        self.fired = 0
        self.suppressed = 0

    def should_recompute(self, now: float, current: Mapping[int, float]) -> bool:
        """True when a fresh selection is warranted at time ``now``."""
        if self._last_time is None:
            return True  # never selected yet
        if now - self._last_time < self.min_interval:
            self.suppressed += 1
            return False
        if self.detector.score(current) >= self.threshold:
            return True
        self.suppressed += 1
        return False

    def committed(self, now: float, frequencies: Mapping[int, float], selected: Iterable[int]) -> None:
        """Tell the trigger a selection was installed at time ``now``."""
        self._last_time = now
        self.fired += 1
        self.detector.rebase(frequencies, selected)
