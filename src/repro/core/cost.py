"""Evaluation of the paper's objective function (Section III, eq. 1).

``Cost(A_s) = sum_v f_v * (1 + d(v, N_s ∪ A_s))`` where ``d`` is the
overlay-specific hop-count estimate:

* **Pastry** (Section IV): ``d_uv = b - lcp(u, v)`` — symmetric, so the
  relevant quantity is simply the distance between ``v`` and its closest
  (by prefix) pointer.
* **Chord** (Section V, eq. 6): ``d_uv = bitlength((v - u) mod 2**b)`` —
  asymmetric. Queries travel *clockwise*, so only pointers at or before
  ``v`` (walking clockwise from the source) can serve ``v``; because the
  gap-to-bitlength map is monotone, the best pointer for ``v`` is the
  closest preceding one.

Two implementations are provided for each evaluator:

* a scalar pure-Python version (``*_scalar``) — the ground truth every
  selection algorithm is tested against, and the only path on machines
  without NumPy;
* a NumPy-batched version (``*_vectorized``) — frequency weights, peer
  ids and pointer offsets live in arrays; ``bit_length`` is computed via
  ``np.frexp`` exponents (exact for ids below ``2**53``) and the
  closest-preceding-pointer rule via ``np.searchsorted``.

The public :func:`pastry_cost` / :func:`chord_cost` entry points dispatch
by input size: instances with at least :data:`VECTORIZE_THRESHOLD`
frequency entries use the vectorized kernels, smaller ones the scalar
reference (whose per-call overhead is lower).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError, InfeasibleConstraintError
from repro.util.ids import IdSpace

try:  # NumPy is a declared dependency but the scalar path keeps the
    import numpy as _np  # library usable (and testable) without it.
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "VECTORIZE_THRESHOLD",
    "pastry_peer_distance",
    "chord_peer_distance",
    "pastry_cost",
    "pastry_cost_scalar",
    "pastry_cost_vectorized",
    "chord_cost",
    "chord_cost_scalar",
    "chord_cost_vectorized",
    "chord_sorted_offsets",
    "evaluate",
    "brute_force_optimal",
]

#: Minimum number of frequency entries before the NumPy kernels win over
#: the scalar loops (array setup costs ~10µs per call).
VECTORIZE_THRESHOLD = 64

#: ``np.frexp`` exponents equal ``int.bit_length`` only while the value is
#: exactly representable as a float64, i.e. below ``2**53``.
_MAX_VECTOR_BITS = 53


def _vectorizable(space: IdSpace, entries: int) -> bool:
    return _np is not None and entries >= VECTORIZE_THRESHOLD and space.bits <= _MAX_VECTOR_BITS


def _bit_lengths(values):
    """Elementwise ``int.bit_length`` of a non-negative integer array.

    ``frexp(x) = (m, e)`` with ``x = m * 2**e`` and ``0.5 <= m < 1``, so
    ``e`` is exactly the bit length for positive integers (and 0 for 0).
    """
    _, exponents = _np.frexp(values.astype(_np.float64))
    return exponents


def pastry_peer_distance(space: IdSpace, peer: int, pointers: Iterable[int]) -> int:
    """Estimated hops from the best pointer to ``peer`` under Pastry routing.

    Returns ``space.bits`` (the worst case) when ``pointers`` is empty.
    """
    best = space.bits
    for pointer in pointers:
        best = min(best, space.pastry_distance(pointer, peer))
        if best == 0:
            break
    return best


def chord_peer_distance(space: IdSpace, source: int, peer: int, pointers: Iterable[int]) -> int:
    """Estimated hops from the best pointer to ``peer`` under Chord routing.

    Only pointers in the clockwise arc ``(source, peer]`` are usable; the
    query must not overshoot the destination. Returns ``space.bits`` when no
    pointer can serve ``peer``.
    """
    target_gap = space.gap(source, peer)
    best = space.bits
    for pointer in pointers:
        pointer_gap = space.gap(source, pointer)
        if 0 < pointer_gap <= target_gap:
            best = min(best, space.chord_distance(pointer, peer))
            if best == 0:
                break
    return best


# ----------------------------------------------------------------------
# Pastry cost
# ----------------------------------------------------------------------


def pastry_cost_scalar(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Pastry pointer set — scalar reference."""
    pointers = list(core_neighbors) + list(auxiliary)
    return sum(
        weight * (1 + pastry_peer_distance(space, peer, pointers))
        for peer, weight in frequencies.items()
    )


def pastry_cost_vectorized(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """NumPy-batched :func:`pastry_cost_scalar`.

    ``d(u, v) = bitlength(u XOR v)``: the peer×pointer XOR matrix is
    reduced with an axis-1 minimum, so the whole evaluation is three
    array ops regardless of instance size.
    """
    count = len(frequencies)
    peers = _np.fromiter(frequencies.keys(), dtype=_np.int64, count=count)
    weights = _np.fromiter(frequencies.values(), dtype=_np.float64, count=count)
    pointers = _np.array(list(core_neighbors) + list(auxiliary), dtype=_np.int64)
    if pointers.size == 0:
        return float(weights.sum() * (1 + space.bits))
    distances = _bit_lengths(peers[:, None] ^ pointers[None, :]).min(axis=1)
    return float(_np.dot(weights, 1.0 + distances))


def pastry_cost(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Pastry pointer set.

    Dispatches to the NumPy kernel for large instances, the scalar
    reference otherwise.
    """
    if _vectorizable(space, len(frequencies)):
        return pastry_cost_vectorized(space, frequencies, core_neighbors, auxiliary)
    return pastry_cost_scalar(space, frequencies, core_neighbors, auxiliary)


# ----------------------------------------------------------------------
# Chord cost
# ----------------------------------------------------------------------


def chord_sorted_offsets(
    space: IdSpace,
    source: int,
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int] = (),
) -> list[int]:
    """Sorted clockwise offsets of a pointer set, as :func:`chord_cost`
    consumes them.

    Callers that evaluate many pointer sets sharing a fixed component
    (e.g. brute-force search over auxiliary subsets with fixed core
    neighbors) can build this once and pass it via ``sorted_offsets``,
    hoisting the set-union and gap computation out of the inner loop.
    """
    return sorted(
        space.gap(source, pointer)
        for pointer in set(core_neighbors) | set(auxiliary)
        if pointer != source
    )


def chord_cost_scalar(
    space: IdSpace,
    source: int,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
    *,
    sorted_offsets: Sequence[int] | None = None,
) -> float:
    """Objective value (eq. 1) for a Chord pointer set — scalar reference.

    Uses the closest-preceding-pointer rule: for each peer the serving
    pointer is the one with the largest clockwise offset from ``source``
    not exceeding the peer's own offset.
    """
    if sorted_offsets is None:
        sorted_offsets = chord_sorted_offsets(space, source, core_neighbors, auxiliary)
    total = 0.0
    for peer, weight in frequencies.items():
        target_gap = space.gap(source, peer)
        index = bisect_right(sorted_offsets, target_gap)
        if index == 0:
            distance = space.bits
        else:
            distance = (target_gap - sorted_offsets[index - 1]).bit_length()
        total += weight * (1 + distance)
    return total


def chord_cost_vectorized(
    space: IdSpace,
    source: int,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
    *,
    sorted_offsets: Sequence[int] | None = None,
) -> float:
    """NumPy-batched :func:`chord_cost_scalar`.

    The closest preceding pointer for every peer comes from one
    ``searchsorted`` over the sorted offsets; hop distances from the
    ``frexp``-exponent bit-length trick.
    """
    mask = _np.int64(space.mask)
    if sorted_offsets is None:
        pointers = _np.array(list(core_neighbors) + list(auxiliary), dtype=_np.int64)
        offsets = _np.unique((pointers - source) & mask)
        if offsets.size and offsets[0] == 0:  # the source itself is not a pointer
            offsets = offsets[1:]
    else:
        offsets = _np.asarray(sorted_offsets, dtype=_np.int64)
    count = len(frequencies)
    peers = _np.fromiter(frequencies.keys(), dtype=_np.int64, count=count)
    weights = _np.fromiter(frequencies.values(), dtype=_np.float64, count=count)
    gaps = (peers - source) & mask
    if offsets.size == 0:
        return float(weights.sum() * (1 + space.bits))
    index = _np.searchsorted(offsets, gaps, side="right")
    preceding = offsets[_np.maximum(index - 1, 0)]
    distances = _np.where(index > 0, _bit_lengths(gaps - preceding), space.bits)
    return float(_np.dot(weights, 1.0 + distances))


def chord_cost(
    space: IdSpace,
    source: int,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
    *,
    sorted_offsets: Sequence[int] | None = None,
) -> float:
    """Objective value (eq. 1) for a Chord pointer set.

    Dispatches to the NumPy kernel for large instances, the scalar
    reference otherwise. ``sorted_offsets`` optionally supplies the
    pointer offsets precomputed by :func:`chord_sorted_offsets`.
    """
    if _vectorizable(space, len(frequencies)):
        return chord_cost_vectorized(
            space, source, frequencies, core_neighbors, auxiliary, sorted_offsets=sorted_offsets
        )
    return chord_cost_scalar(
        space, source, frequencies, core_neighbors, auxiliary, sorted_offsets=sorted_offsets
    )


# ----------------------------------------------------------------------
# Generic evaluation + brute force
# ----------------------------------------------------------------------


def evaluate(problem: SelectionProblem, auxiliary: Iterable[int], overlay: str) -> float:
    """Evaluate eq. 1 for ``auxiliary`` under ``overlay`` ('pastry',
    'kademlia' or 'chord').

    Kademlia's XOR metric has ``d_uv = bitlength(u XOR v) = b - lcp(u, v)``
    — the same distance classes as Pastry — so both share the prefix
    kernel (see :mod:`repro.core.kademlia_selection`).
    """
    if overlay in ("pastry", "kademlia"):
        return pastry_cost(problem.space, problem.frequencies, problem.core_neighbors, auxiliary)
    if overlay == "chord":
        return chord_cost(
            problem.space, problem.source, problem.frequencies, problem.core_neighbors, auxiliary
        )
    raise ConfigurationError(
        f"unknown overlay {overlay!r}; expected 'pastry', 'kademlia' or 'chord'"
    )


def brute_force_optimal(problem: SelectionProblem, overlay: str) -> SelectionResult:
    """Exhaustively search all candidate subsets of size <= k.

    Exponential — intended only for tests on tiny instances, where it serves
    as ground truth for the polynomial algorithms. QoS bounds are honored:
    subsets leaving any bounded peer above its limit are rejected.
    """
    candidates = sorted(problem.candidates)
    space = problem.space
    core_offsets = (
        chord_sorted_offsets(space, problem.source, problem.core_neighbors)
        if overlay == "chord"
        else None
    )
    core_offset_set = set(core_offsets) if core_offsets is not None else set()
    best_cost = float("inf")
    best_set: tuple[int, ...] = ()
    sizes = range(min(problem.k, len(candidates)), -1, -1)
    for size in sizes:
        for subset in combinations(candidates, size):
            if not _satisfies_bounds(problem, subset, overlay):
                continue
            if core_offsets is not None:
                offsets = list(core_offsets)
                for pointer in subset:
                    if pointer != problem.source:
                        gap = space.gap(problem.source, pointer)
                        if gap not in core_offset_set:
                            insort(offsets, gap)
                cost = chord_cost(
                    space,
                    problem.source,
                    problem.frequencies,
                    problem.core_neighbors,
                    subset,
                    sorted_offsets=offsets,
                )
            else:
                cost = evaluate(problem, subset, overlay)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_set = subset
    if best_cost == float("inf"):
        raise InfeasibleConstraintError(
            f"no subset of size <= {problem.k} satisfies the delay bounds"
        )
    return SelectionResult(frozenset(best_set), best_cost, "brute-force")


def _satisfies_bounds(problem: SelectionProblem, auxiliary: tuple[int, ...], overlay: str) -> bool:
    """Check the QoS delay bounds (lookup estimate ``1 + d`` <= bound)."""
    if not problem.delay_bounds:
        return True
    pointers = list(problem.core_neighbors) + list(auxiliary)
    for peer, bound in problem.delay_bounds.items():
        if overlay in ("pastry", "kademlia"):
            distance = pastry_peer_distance(problem.space, peer, pointers)
        else:
            distance = chord_peer_distance(problem.space, problem.source, peer, pointers)
        if 1 + distance > bound:
            return False
    return True
