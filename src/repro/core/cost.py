"""Evaluation of the paper's objective function (Section III, eq. 1).

``Cost(A_s) = sum_v f_v * (1 + d(v, N_s ∪ A_s))`` where ``d`` is the
overlay-specific hop-count estimate:

* **Pastry** (Section IV): ``d_uv = b - lcp(u, v)`` — symmetric, so the
  relevant quantity is simply the distance between ``v`` and its closest
  (by prefix) pointer.
* **Chord** (Section V, eq. 6): ``d_uv = bitlength((v - u) mod 2**b)`` —
  asymmetric. Queries travel *clockwise*, so only pointers at or before
  ``v`` (walking clockwise from the source) can serve ``v``; because the
  gap-to-bitlength map is monotone, the best pointer for ``v`` is the
  closest preceding one.

These evaluators are the ground truth that every selection algorithm is
tested against, and also power brute-force optimal search in the test
suite.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import combinations
from typing import Iterable, Mapping

from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace

__all__ = [
    "pastry_peer_distance",
    "chord_peer_distance",
    "pastry_cost",
    "chord_cost",
    "evaluate",
    "brute_force_optimal",
]


def pastry_peer_distance(space: IdSpace, peer: int, pointers: Iterable[int]) -> int:
    """Estimated hops from the best pointer to ``peer`` under Pastry routing.

    Returns ``space.bits`` (the worst case) when ``pointers`` is empty.
    """
    best = space.bits
    for pointer in pointers:
        best = min(best, space.pastry_distance(pointer, peer))
        if best == 0:
            break
    return best


def chord_peer_distance(space: IdSpace, source: int, peer: int, pointers: Iterable[int]) -> int:
    """Estimated hops from the best pointer to ``peer`` under Chord routing.

    Only pointers in the clockwise arc ``(source, peer]`` are usable; the
    query must not overshoot the destination. Returns ``space.bits`` when no
    pointer can serve ``peer``.
    """
    target_gap = space.gap(source, peer)
    best = space.bits
    for pointer in pointers:
        pointer_gap = space.gap(source, pointer)
        if 0 < pointer_gap <= target_gap:
            best = min(best, space.chord_distance(pointer, peer))
            if best == 0:
                break
    return best


def pastry_cost(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Pastry pointer set."""
    pointers = list(core_neighbors) + list(auxiliary)
    return sum(
        weight * (1 + pastry_peer_distance(space, peer, pointers))
        for peer, weight in frequencies.items()
    )


def chord_cost(
    space: IdSpace,
    source: int,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Chord pointer set.

    Uses the closest-preceding-pointer rule: for each peer the serving
    pointer is the one with the largest clockwise offset from ``source``
    not exceeding the peer's own offset.
    """
    offsets = sorted(
        space.gap(source, pointer)
        for pointer in set(core_neighbors) | set(auxiliary)
        if pointer != source
    )
    total = 0.0
    for peer, weight in frequencies.items():
        target_gap = space.gap(source, peer)
        index = bisect_right(offsets, target_gap)
        if index == 0:
            distance = space.bits
        else:
            distance = (target_gap - offsets[index - 1]).bit_length()
        total += weight * (1 + distance)
    return total


def evaluate(problem: SelectionProblem, auxiliary: Iterable[int], overlay: str) -> float:
    """Evaluate eq. 1 for ``auxiliary`` under ``overlay`` ('pastry' or 'chord')."""
    if overlay == "pastry":
        return pastry_cost(problem.space, problem.frequencies, problem.core_neighbors, auxiliary)
    if overlay == "chord":
        return chord_cost(
            problem.space, problem.source, problem.frequencies, problem.core_neighbors, auxiliary
        )
    raise ConfigurationError(f"unknown overlay {overlay!r}; expected 'pastry' or 'chord'")


def brute_force_optimal(problem: SelectionProblem, overlay: str) -> SelectionResult:
    """Exhaustively search all candidate subsets of size <= k.

    Exponential — intended only for tests on tiny instances, where it serves
    as ground truth for the polynomial algorithms. QoS bounds are honored:
    subsets leaving any bounded peer above its limit are rejected.
    """
    candidates = sorted(problem.candidates)
    best_cost = float("inf")
    best_set: tuple[int, ...] = ()
    sizes = range(min(problem.k, len(candidates)), -1, -1)
    for size in sizes:
        for subset in combinations(candidates, size):
            if not _satisfies_bounds(problem, subset, overlay):
                continue
            cost = evaluate(problem, subset, overlay)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_set = subset
    if best_cost == float("inf"):
        from repro.util.errors import InfeasibleConstraintError

        raise InfeasibleConstraintError(
            f"no subset of size <= {problem.k} satisfies the delay bounds"
        )
    return SelectionResult(frozenset(best_set), best_cost, "brute-force")


def _satisfies_bounds(problem: SelectionProblem, auxiliary: tuple[int, ...], overlay: str) -> bool:
    """Check the QoS delay bounds (lookup estimate ``1 + d`` <= bound)."""
    if not problem.delay_bounds:
        return True
    pointers = list(problem.core_neighbors) + list(auxiliary)
    for peer, bound in problem.delay_bounds.items():
        if overlay == "pastry":
            distance = pastry_peer_distance(problem.space, peer, pointers)
        else:
            distance = chord_peer_distance(problem.space, problem.source, peer, pointers)
        if 1 + distance > bound:
            return False
    return True
