"""Frequency-oblivious auxiliary-neighbor baselines (paper Section VI-A).

The paper's evaluation metric is the percentage reduction in average hop
count relative to a scheme that picks the ``k`` extra pointers *without*
looking at access frequencies:

* **Chord**: with ``k = r log n``, pick ``r`` auxiliary neighbors uniformly
  at random within each clockwise distance range ``(2**i, 2**(i+1))`` —
  i.e. ``r`` extra pointers per finger interval.
* **Pastry**: pick ``r`` auxiliary neighbors per prefix-match class — for
  each shared-prefix length, ``r`` random peers whose longest common prefix
  with the source has exactly that length.

Ranges/classes that hold no candidates contribute nothing; any leftover
budget is filled uniformly at random from the remaining candidates so the
baseline always spends the same budget as the optimized scheme (and the
comparison stays apples-to-apples).

A plain uniform-random baseline is included for ablations.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.cost import chord_cost, pastry_cost
from repro.core.types import SelectionProblem, SelectionResult

__all__ = [
    "select_chord_oblivious",
    "select_kademlia_oblivious",
    "select_pastry_oblivious",
    "select_uniform_random",
]


def _candidate_pool(problem: SelectionProblem, pool: Sequence[int] | None) -> set[int]:
    """The baseline's eligible pointer targets.

    The paper's frequency-oblivious scheme picks *random nodes per
    distance class* — it does not restrict itself to previously-queried
    peers (any Chord/Pastry node can discover a random node in a range
    with one lookup, exactly as core-table maintenance does). Callers that
    know the node population pass it via ``pool``; without one we fall
    back to the observed candidates.
    """
    if pool is None:
        return problem.candidates
    return set(pool) - set(problem.core_neighbors) - {problem.source}


def _fill_remaining(chosen: set[int], candidates: Iterable[int], k: int, rng: random.Random) -> None:
    """Top up ``chosen`` to ``k`` entries from the unused candidates."""
    leftovers = sorted(set(candidates) - chosen)
    missing = k - len(chosen)
    if missing > 0 and leftovers:
        chosen.update(rng.sample(leftovers, min(missing, len(leftovers))))


def _class_quotas(k: int, class_count: int) -> list[int]:
    """Per-class budgets in visit order: the paper's ``r`` pointers per
    class, with the remainder of ``k = r * class_count + rem`` spread
    round-robin over the first ``rem`` classes visited.

    Previously the remainder was silently dropped (``max(1, k //
    class_count)``), leaving it to the uniform ``_fill_remaining`` top-up
    — which quietly degraded the per-class baseline toward uniform
    random whenever ``class_count`` did not divide ``k``. For
    ``k < class_count`` the quotas degenerate to one pointer for each of
    the first ``k`` classes visited, matching the old behavior there.
    """
    if class_count == 0:
        return []
    base, remainder = divmod(k, class_count)
    if base == 0:
        # Budget below one-per-class: a single pointer for each class,
        # the caller's running ``k - len(chosen)`` cap stops after ``k``.
        return [1] * class_count
    return [base + (1 if index < remainder else 0) for index in range(class_count)]


def select_chord_oblivious(
    problem: SelectionProblem,
    rng: random.Random,
    pool: Sequence[int] | None = None,
) -> SelectionResult:
    """Chord baseline: ``r`` random pointers per finger range ``(2**i, 2**(i+1))``."""
    space = problem.space
    source = problem.source
    candidates = _candidate_pool(problem, pool)
    by_range: dict[int, list[int]] = defaultdict(list)
    for peer in sorted(candidates):
        gap = space.gap(source, peer)
        if gap:
            by_range[gap.bit_length() - 1].append(peer)
    quotas = _class_quotas(problem.k, len(by_range))
    chosen: set[int] = set()
    # Visit ranges far-to-near so the far (densely populated) intervals are
    # covered first when the budget is tight.
    for quota, bucket in zip(quotas, sorted(by_range, reverse=True)):
        if len(chosen) >= problem.k:
            break
        take = min(quota, len(by_range[bucket]), problem.k - len(chosen))
        chosen.update(rng.sample(by_range[bucket], take))
    _fill_remaining(chosen, candidates, problem.k, rng)
    cost = chord_cost(space, source, problem.frequencies, problem.core_neighbors, chosen)
    return SelectionResult(frozenset(chosen), cost, "chord-oblivious")


def select_pastry_oblivious(
    problem: SelectionProblem,
    rng: random.Random,
    pool: Sequence[int] | None = None,
) -> SelectionResult:
    """Pastry baseline: ``r`` random pointers per shared-prefix-length class."""
    space = problem.space
    source = problem.source
    candidates = _candidate_pool(problem, pool)
    by_class: dict[int, list[int]] = defaultdict(list)
    for peer in sorted(candidates):
        by_class[space.common_prefix_length(source, peer)].append(peer)
    quotas = _class_quotas(problem.k, len(by_class))
    chosen: set[int] = set()
    # Short-prefix classes hold most peers; cover them first.
    for quota, shared in zip(quotas, sorted(by_class)):
        if len(chosen) >= problem.k:
            break
        take = min(quota, len(by_class[shared]), problem.k - len(chosen))
        chosen.update(rng.sample(by_class[shared], take))
    _fill_remaining(chosen, candidates, problem.k, rng)
    cost = pastry_cost(space, problem.frequencies, problem.core_neighbors, chosen)
    return SelectionResult(frozenset(chosen), cost, "pastry-oblivious")


def select_kademlia_oblivious(
    problem: SelectionProblem,
    rng: random.Random,
    pool: Sequence[int] | None = None,
) -> SelectionResult:
    """Kademlia baseline: ``r`` random pointers per XOR distance class.

    XOR distance classes are exactly shared-prefix-length classes
    (``bitlength(u XOR v) = b - lcp(u, v)``), so the per-class draw — and
    the eq.-1 cost of the result — coincides with the Pastry baseline;
    only the provenance label differs.
    """
    result = select_pastry_oblivious(problem, rng, pool=pool)
    return SelectionResult(result.auxiliary, result.cost, "kademlia-oblivious")


def select_uniform_random(
    problem: SelectionProblem,
    rng: random.Random,
    overlay: str,
    pool: Sequence[int] | None = None,
) -> SelectionResult:
    """Ablation baseline: ``k`` pointers uniformly at random among candidates."""
    candidates = sorted(_candidate_pool(problem, pool))
    chosen = set(rng.sample(candidates, min(problem.k, len(candidates))))
    if overlay in ("pastry", "kademlia"):
        cost = pastry_cost(problem.space, problem.frequencies, problem.core_neighbors, chosen)
    else:
        cost = chord_cost(
            problem.space, problem.source, problem.frequencies, problem.core_neighbors, chosen
        )
    return SelectionResult(frozenset(chosen), cost, f"{overlay}-uniform-random")
