"""Shared datatypes for the auxiliary-neighbor selection layer.

The selection algorithms (Sections IV and V of the paper) all consume the
same inputs — per-peer access frequencies, a set of core neighbors, a
pointer budget ``k`` — and all produce a :class:`SelectionResult`.
:class:`SelectionProblem` bundles the inputs so overlays, experiments and
tests construct problems uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.validation import require_frequencies, require_non_negative_int

__all__ = ["SelectionProblem", "SelectionResult"]


@dataclass(frozen=True)
class SelectionProblem:
    """Inputs to an auxiliary-neighbor selection (paper Section III).

    Attributes
    ----------
    space:
        The identifier space both ids and distances live in.
    source:
        Identifier of the node ``s`` performing the selection.
    frequencies:
        ``{peer_id: access_frequency}`` for the peers ``V`` that ``s`` has
        observed queries for. Must not contain ``source``.
    core_neighbors:
        Identifiers of the core routing-table neighbors ``N_s``. These are
        "free" pointers: they shape the cost but consume no budget.
    k:
        Number of auxiliary pointers to select.
    delay_bounds:
        Optional QoS constraints: ``{peer_id: max_hops}`` requiring the
        estimated lookup distance ``1 + d(...)`` for that peer to be at most
        ``max_hops`` (Sections IV-D and V-C).
    """

    space: IdSpace
    source: int
    frequencies: Mapping[int, float]
    core_neighbors: frozenset[int]
    k: int
    delay_bounds: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.space.validate(self.source, "source id")
        require_non_negative_int(self.k, "k")
        require_frequencies(self.frequencies)
        for peer in self.frequencies:
            self.space.validate(peer, "peer id")
        if self.source in self.frequencies:
            raise ConfigurationError("frequencies must not include the source node itself")
        for neighbor in self.core_neighbors:
            self.space.validate(neighbor, "core neighbor id")
        if self.source in self.core_neighbors:
            raise ConfigurationError("core_neighbors must not include the source node itself")
        for peer, bound in self.delay_bounds.items():
            self.space.validate(peer, "QoS peer id")
            if not isinstance(bound, int) or bound < 1:
                raise ConfigurationError(f"delay bound for peer {peer} must be an int >= 1, got {bound!r}")

    @property
    def candidates(self) -> set[int]:
        """Peers eligible to become auxiliary neighbors: ``V - N_s``."""
        return set(self.frequencies) - set(self.core_neighbors)

    def with_k(self, k: int) -> "SelectionProblem":
        """Return a copy of this problem with a different pointer budget."""
        return SelectionProblem(
            space=self.space,
            source=self.source,
            frequencies=self.frequencies,
            core_neighbors=self.core_neighbors,
            k=k,
            delay_bounds=self.delay_bounds,
        )


@dataclass(frozen=True)
class SelectionResult:
    """Output of an auxiliary-neighbor selection.

    Attributes
    ----------
    auxiliary:
        The chosen auxiliary neighbor ids, ``|auxiliary| <= k``.
    cost:
        Value of the paper's objective (eq. 1),
        ``sum_v f_v * (1 + d(v, N_s ∪ A_s))``, for this selection.
    algorithm:
        Short name of the algorithm that produced the result
        (useful when comparing implementations in benchmarks).
    """

    auxiliary: frozenset[int]
    cost: float
    algorithm: str

    def __post_init__(self) -> None:
        if not (self.cost >= 0):
            raise ConfigurationError(f"cost must be non-negative, got {self.cost!r}")
