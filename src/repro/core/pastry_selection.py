"""Auxiliary-neighbor selection for Pastry (paper Section IV).

Peers are leaves of a binary trie of their ids; the estimated distance
between two peers is the height of their lowest common ancestor
(Proposition 4.1), i.e. ``b - lcp``. Selecting the ``k`` best auxiliary
neighbors is then a budgeted pointer-placement problem on the trie, solved
bottom-up (eq. 2/3):

``C(T_a, j) = min over splits (i, j-i) of
C(L_a, i) + F(L_a)·[no pointer in L_a] + C(R_a, j-i) + F(R_a)·[no pointer in R_a]``

Three solvers are provided:

* :func:`select_pastry_dp` — the paper's ``O(n k^2 b)`` dynamic program
  (``O(n k^2)`` here thanks to path compression), trying every split at
  every vertex. Also supports QoS delay bounds (Section IV-D) via
  "this subtree must contain a pointer" markers.
* :func:`select_pastry_greedy` — the paper's ``O(n k b)`` algorithm
  exploiting the nesting property (P): the optimal ``j-1``-pointer set is
  a subset of the optimal ``j``-pointer set, so each vertex only compares
  two candidate splits per budget level (eq. 4).
* :class:`IncrementalPastrySelector` — Section IV-C: maintains the trie
  and all memoized cost tables across frequency updates, peer joins and
  peer leaves, recomputing only the ``O(b)`` vertices on the affected
  root-to-leaf path (``O(b k)`` per update).

:func:`select_pastry` dispatches: QoS-constrained problems go to the DP
solver (whose optimality under subtree constraints is immediate), the rest
to the greedy.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.trie import PeerTrie, TrieVertex
from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError, InfeasibleConstraintError
from repro.util.ids import IdSpace

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "select_pastry",
    "select_pastry_dp",
    "select_pastry_greedy",
    "IncrementalPastrySelector",
]

_INF = float("inf")

#: Budget size beyond which the DP merge switches to the NumPy min-plus
#: kernel (below it, array setup dominates the O(k^2) Python loop).
_DP_VECTOR_MIN_BUDGET = 32


class _CostTable:
    """Memoized DP state for one trie vertex.

    ``costs[j]`` is ``C(T_a, j)``, the minimum cost contributed below this
    vertex when ``j`` auxiliary pointers are placed in its subtree.
    ``splits[j]`` records how many of those ``j`` go to the first child
    (in bit order), enabling selection reconstruction.
    """

    __slots__ = ("costs", "splits")

    def __init__(self, costs: list[float], splits: list[int]) -> None:
        self.costs = costs
        self.splits = splits


def _leaf_table(vertex: TrieVertex, k: int) -> _CostTable:
    """Cost table for a leaf: zero internal cost; one pointer may sit on the
    leaf itself when it is eligible (not a core neighbor). A QoS-required
    leaf without a core pointer is infeasible at ``j = 0``."""
    costs = [0.0]
    if not vertex.is_core and k >= 1:
        costs.append(0.0)
    if vertex.required and not vertex.is_core:
        costs[0] = _INF
    return _CostTable(costs, [])


def _edge_penalty(child: TrieVertex) -> float:
    """Cost added for the compressed edge into ``child`` when its subtree
    receives no pointer: one unit per uncompressed edge per unit frequency
    (the indicator terms of eq. 2, summed along the unary chain)."""
    return child.edge_length() * child.frequency_sum


def _child_cost(child: TrieVertex, j: int) -> float:
    """``C(child, j)`` plus the edge penalty when the subtree stays empty."""
    table: _CostTable = child.memo  # type: ignore[assignment]
    cost = table.costs[j]
    if j == 0 and not child.has_core:
        cost += _edge_penalty(child)
    return cost


def _merge_dp(vertex: TrieVertex, k: int) -> _CostTable:
    """Exact merge: try every split of ``j`` pointers between the children
    (eq. 3). ``O(k^2)`` per vertex."""
    children = vertex.child_order()
    jmax = min(k, vertex.eligible_count)
    if not children:
        table = _CostTable([0.0], [0])
    elif len(children) == 1:
        child = children[0]
        child_max = len(child.memo.costs) - 1  # type: ignore[union-attr]
        costs = [_child_cost(child, min(j, child_max)) for j in range(jmax + 1)]
        table = _CostTable(costs, [min(j, child_max) for j in range(jmax + 1)])
    elif _np is not None and jmax >= _DP_VECTOR_MIN_BUDGET:
        table = _merge_dp_vectorized(vertex, jmax)
    else:
        first, second = children
        first_max = len(first.memo.costs) - 1  # type: ignore[union-attr]
        second_max = len(second.memo.costs) - 1  # type: ignore[union-attr]
        costs: list[float] = []
        splits: list[int] = []
        for j in range(jmax + 1):
            best_cost = _INF
            best_split = min(j, first_max)
            low = max(0, j - second_max)
            high = min(j, first_max)
            for i in range(low, high + 1):
                cost = _child_cost(first, i) + _child_cost(second, j - i)
                if cost < best_cost:
                    best_cost = cost
                    best_split = i
            costs.append(best_cost)
            splits.append(best_split)
        table = _CostTable(costs, splits)
    if vertex.required and not vertex.has_core and table.costs:
        table.costs[0] = _INF
    return table


def _merge_dp_vectorized(vertex: TrieVertex, jmax: int) -> _CostTable:
    """NumPy form of the exact two-child merge: the ``(j, i)`` split matrix
    ``fc[i] + sc[j-i]`` (a min-plus convolution) is built once and reduced
    with a row-wise argmin. Matches the scalar loop's leftmost-minimum tie
    break, so the reconstructed selections are identical."""
    first, second = vertex.child_order()
    fc = list(first.memo.costs)  # type: ignore[union-attr]
    sc = list(second.memo.costs)  # type: ignore[union-attr]
    if not first.has_core:
        fc[0] += _edge_penalty(first)
    if not second.has_core:
        sc[0] += _edge_penalty(second)
    fc_arr = _np.asarray(fc, dtype=_np.float64)
    sc_arr = _np.asarray(sc, dtype=_np.float64)
    i_index = _np.arange(len(fc))[None, :]
    remainder = _np.arange(jmax + 1)[:, None] - i_index
    valid = (remainder >= 0) & (remainder < len(sc))
    matrix = _np.where(
        valid,
        fc_arr[i_index] + sc_arr[_np.clip(remainder, 0, len(sc) - 1)],
        _INF,
    )
    splits = _np.argmin(matrix, axis=1)
    costs = matrix[_np.arange(jmax + 1), splits]
    return _CostTable(costs.tolist(), splits.tolist())


def _merge_greedy(vertex: TrieVertex, k: int) -> _CostTable:
    """Nesting-property merge (eq. 4): the optimal split for ``j`` extends
    the optimal split for ``j-1`` by one pointer on one side. ``O(k)``."""
    children = vertex.child_order()
    jmax = min(k, vertex.eligible_count)
    if not children:
        return _CostTable([0.0], [0])
    if len(children) == 1:
        child = children[0]
        child_max = len(child.memo.costs) - 1  # type: ignore[union-attr]
        costs = [_child_cost(child, min(j, child_max)) for j in range(jmax + 1)]
        return _CostTable(costs, [min(j, child_max) for j in range(jmax + 1)])
    first, second = children
    first_max = len(first.memo.costs) - 1  # type: ignore[union-attr]
    second_max = len(second.memo.costs) - 1  # type: ignore[union-attr]
    costs = [_child_cost(first, 0) + _child_cost(second, 0)]
    splits = [0]
    for j in range(1, jmax + 1):
        left = splits[j - 1]
        right = j - 1 - left
        grow_left = _child_cost(first, left + 1) + _child_cost(second, right) if left + 1 <= first_max else _INF
        grow_right = _child_cost(first, left) + _child_cost(second, right + 1) if right + 1 <= second_max else _INF
        if grow_left <= grow_right:
            costs.append(grow_left)
            splits.append(left + 1)
        else:
            costs.append(grow_right)
            splits.append(left)
    return _CostTable(costs, splits)


def _build_trie(problem: SelectionProblem) -> PeerTrie:
    """Materialize the trie for a selection problem: observed peers,
    core neighbors (zero-frequency unless also observed) and QoS markers."""
    trie = PeerTrie(problem.space)
    for peer, weight in problem.frequencies.items():
        trie.insert(peer, weight)
    for neighbor in problem.core_neighbors:
        trie.insert(neighbor, problem.frequencies.get(neighbor, 0.0), is_core=True)
    for peer, bound in problem.delay_bounds.items():
        if peer not in trie:
            trie.insert(peer, 0.0)
        # Total lookup estimate is 1 + d; a bound of x hops allows d <= x-1.
        trie.set_required(peer, bound - 1)
    return trie


def _fill_tables(trie: PeerTrie, k: int, use_dp: bool) -> None:
    """Bottom-up pass computing every vertex's cost table."""
    merge = _merge_dp if use_dp else _merge_greedy
    for vertex in trie.postorder():
        if vertex.is_leaf:
            vertex.memo = _leaf_table(vertex, k)
        else:
            vertex.memo = merge(vertex, k)


def _collect_selection(vertex: TrieVertex, budget: int, out: list[int]) -> None:
    """Walk the recorded splits downward, emitting the chosen leaves."""
    if budget == 0:
        return
    if vertex.is_leaf:
        out.append(vertex.peer)  # budget is necessarily 1 here
        return
    children = vertex.child_order()
    table: _CostTable = vertex.memo  # type: ignore[assignment]
    if len(children) == 1:
        _collect_selection(children[0], table.splits[budget], out)
        return
    first_share = table.splits[budget]
    _collect_selection(children[0], first_share, out)
    _collect_selection(children[1], budget - first_share, out)


def _result_from_trie(trie: PeerTrie, k: int, algorithm: str) -> SelectionResult:
    """Read the root table, reconstruct the pointer set and translate the
    internal trie cost into the paper's objective (eq. 1):
    ``Cost = sum f_v (1 + d_v) = trie cost + total frequency``."""
    root = trie.root
    if root.memo is None:  # empty trie
        return SelectionResult(frozenset(), 0.0, algorithm)
    table: _CostTable = root.memo  # type: ignore[assignment]
    # Extra pointers never increase the cost, so the full usable budget
    # (capped by the number of eligible leaves) is always optimal.
    budget = min(k, len(table.costs) - 1)
    if table.costs[budget] == _INF:
        raise InfeasibleConstraintError(
            f"QoS delay bounds cannot be met with k={k} auxiliary pointers"
        )
    chosen: list[int] = []
    _collect_selection(root, budget, chosen)
    cost = table.costs[budget] + trie.total_frequency()
    return SelectionResult(frozenset(chosen), cost, algorithm)


def select_pastry_dp(problem: SelectionProblem) -> SelectionResult:
    """Optimal selection via the ``O(n k^2)`` dynamic program (Section IV-A).

    Supports QoS delay bounds; raises
    :class:`~repro.util.errors.InfeasibleConstraintError` when they cannot
    be met with ``k`` pointers.
    """
    trie = _build_trie(problem)
    _fill_tables(trie, problem.k, use_dp=True)
    return _result_from_trie(trie, problem.k, "pastry-dp")


def select_pastry_greedy(problem: SelectionProblem) -> SelectionResult:
    """Optimal selection via the ``O(n k)`` nesting-property algorithm
    (Section IV-B). Does not accept QoS bounds — use the DP for those."""
    if problem.delay_bounds:
        raise ConfigurationError("greedy solver does not support delay bounds; use select_pastry_dp")
    trie = _build_trie(problem)
    _fill_tables(trie, problem.k, use_dp=False)
    return _result_from_trie(trie, problem.k, "pastry-greedy")


def select_pastry(problem: SelectionProblem) -> SelectionResult:
    """Solve a Pastry selection problem with the appropriate algorithm:
    the DP when QoS bounds are present, the faster greedy otherwise."""
    if problem.delay_bounds:
        return select_pastry_dp(problem)
    return select_pastry_greedy(problem)


class IncrementalPastrySelector:
    """Incrementally-maintained optimal selection (Section IV-C).

    Keeps the trie and all per-vertex cost tables alive between queries.
    Each frequency update, peer join or peer leave triggers recomputation
    only along the affected root-to-leaf path — ``O(b k)`` work — after
    which :meth:`selection` reconstructs the current optimum in
    ``O(k b)``.

    Example
    -------
    >>> from repro.util.ids import IdSpace
    >>> selector = IncrementalPastrySelector(IdSpace(8), source=0,
    ...                                      core_neighbors=[128], k=2)
    >>> selector.observe(3, 10.0)
    >>> selector.observe(77, 4.0)
    >>> sorted(selector.selection().auxiliary)
    [3, 77]
    """

    def __init__(
        self,
        space: IdSpace,
        source: int,
        core_neighbors: Sequence[int],
        k: int,
    ) -> None:
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.space = space
        self.source = space.validate(source, "source id")
        self.k = k
        self._delay_bounds: dict[int, int] = {}
        self._trie = PeerTrie(space, on_path_change=self._refresh_path)
        self._core: set[int] = set()
        for neighbor in core_neighbors:
            self.add_core_neighbor(neighbor)

    # -- mutations ------------------------------------------------------
    def observe(self, peer: int, weight: float = 1.0) -> None:
        """Record query traffic toward ``peer`` (adds ``weight`` to its
        frequency, inserting the peer if unseen)."""
        if peer == self.source:
            return  # queries for locally-held items need no pointer
        if peer in self._trie:
            self._trie.add_frequency(peer, weight)
        else:
            self._trie.insert(peer, weight)

    def set_frequency(self, peer: int, frequency: float) -> None:
        """Overwrite the frequency of ``peer`` (inserting it if unseen)."""
        if peer == self.source:
            return
        if peer in self._trie:
            self._trie.update_frequency(peer, frequency)
        else:
            self._trie.insert(peer, frequency)

    def remove_peer(self, peer: int) -> None:
        """Forget a departed peer entirely."""
        if peer in self._trie:
            self._trie.remove(peer)
        self._core.discard(peer)
        self._delay_bounds.pop(peer, None)

    def add_core_neighbor(self, neighbor: int) -> None:
        """Register a core routing-table entry (a free pointer)."""
        self.space.validate(neighbor, "core neighbor id")
        if neighbor == self.source:
            raise ConfigurationError("the source node cannot be its own neighbor")
        self._core.add(neighbor)
        if neighbor in self._trie:
            leaf = self._trie.leaf(neighbor)
            self._trie.insert(neighbor, leaf.frequency, is_core=True)
        else:
            self._trie.insert(neighbor, 0.0, is_core=True)

    def set_delay_bound(self, peer: int, bound: int) -> None:
        """Install a QoS bound: lookups for ``peer`` within ``bound`` hops."""
        if bound < 1:
            raise ConfigurationError(f"delay bound must be >= 1, got {bound}")
        if peer not in self._trie:
            self._trie.insert(peer, 0.0)
        self._delay_bounds[peer] = bound
        self._trie.set_required(peer, bound - 1)

    def clear_delay_bounds(self) -> None:
        """Drop all QoS constraints and rebuild the memo tables."""
        self._delay_bounds.clear()
        self._trie.clear_required()
        self.rebuild()

    def set_k(self, k: int) -> None:
        """Change the pointer budget (forces a full ``O(n k)`` rebuild)."""
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.k = k
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute every memo table from scratch."""
        _fill_tables(self._trie, self.k, use_dp=bool(self._delay_bounds))

    # -- queries --------------------------------------------------------
    def selection(self) -> SelectionResult:
        """Current optimal auxiliary set for the maintained frequencies."""
        return _result_from_trie(self._trie, self.k, "pastry-incremental")

    def frequencies(self) -> dict[int, float]:
        """Snapshot of maintained per-peer frequencies (observed peers only)."""
        return {
            leaf.peer: leaf.frequency
            for leaf in self._trie.leaves()
            if leaf.frequency > 0
        }

    def problem(self) -> SelectionProblem:
        """Express the maintained state as a one-shot problem (for tests)."""
        return SelectionProblem(
            space=self.space,
            source=self.source,
            frequencies=self.frequencies(),
            core_neighbors=frozenset(self._core),
            k=self.k,
            delay_bounds=dict(self._delay_bounds),
        )

    # -- internals ------------------------------------------------------
    def _refresh_path(self, path: list[TrieVertex]) -> None:
        use_dp = bool(self._delay_bounds)
        merge = _merge_dp if use_dp else _merge_greedy
        for vertex in path:
            if vertex.is_leaf:
                vertex.memo = _leaf_table(vertex, self.k)
            else:
                for child in vertex.children.values():
                    if child.memo is None:
                        # A structural change can hang a pre-existing
                        # subtree under a fresh split vertex; its table is
                        # still valid, but a brand-new sibling needs one.
                        _fill_tables_subtree(child, self.k, use_dp)
                vertex.memo = merge(vertex, self.k)


def _fill_tables_subtree(vertex: TrieVertex, k: int, use_dp: bool) -> None:
    """Fill missing tables below ``vertex`` (used for fresh split vertices)."""
    merge = _merge_dp if use_dp else _merge_greedy
    stack: list[tuple[TrieVertex, bool]] = [(vertex, False)]
    while stack:
        current, expanded = stack.pop()
        if current.is_leaf:
            current.memo = _leaf_table(current, k)
            continue
        if expanded:
            current.memo = merge(current, k)
            continue
        stack.append((current, True))
        for child in current.child_order():
            stack.append((child, False))
