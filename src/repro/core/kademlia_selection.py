"""Eq.-1 auxiliary selection for Kademlia's XOR metric (Section III).

Kademlia routes by XOR distance: a lookup for ``key`` at node ``u``
forwards to the known contact minimizing ``contact XOR key``, halving the
distance every hop. The hop-count estimate between ``u`` and ``v`` is
therefore the XOR *distance class*

``d_uv = bitlength(u XOR v) = b - lcp(u, v)``

— exactly Pastry's prefix distance (:meth:`repro.util.ids.IdSpace.pastry_distance`).
Distance classes are common-prefix lengths, so the paper's eq.-1 objective

``Cost(A_s) = sum_v f_v * (1 + d(v, N_s ∪ A_s))``

is *identical* for the two overlays, and the trie machinery of
:mod:`repro.core.pastry_selection` (the ``O(n k^2)`` DP of Section IV-A
and the ``O(n k)`` nesting-property greedy of Section IV-B, Lemma 4.1)
solves the Kademlia instance without modification: the trie groups peers
by shared prefix, which for XOR is grouping by distance class.

This module keeps that identity explicit rather than implicit:

* an independent scalar oracle (:func:`kademlia_peer_distance`,
  :func:`kademlia_cost_scalar`) written directly against ``bitlength(XOR)``
  so tests can confirm the Pastry delegation is not circular;
* a NumPy fast path (:func:`kademlia_cost_vectorized`) sharing the
  peer×pointer XOR matrix kernel of
  :func:`repro.core.cost.pastry_cost_vectorized`;
* solver entry points (:func:`select_kademlia_dp`,
  :func:`select_kademlia_greedy`, :func:`select_kademlia`) that delegate
  to the trie solvers and relabel the result so provenance survives in
  serialized documents.

Note the 160-bit caveat: a full-width Kademlia space exceeds the float64
exactness limit of the ``frexp`` bit-length trick, so
:func:`kademlia_cost` (like every kernel in :mod:`repro.core.cost`)
silently falls back to the scalar path above ``2**53`` — correctness
never depends on NumPy.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Mapping

from repro.core import cost as _cost
from repro.core.pastry_selection import select_pastry_dp, select_pastry_greedy
from repro.core.types import SelectionProblem, SelectionResult
from repro.util.ids import IdSpace

__all__ = [
    "xor_distance_class",
    "kademlia_peer_distance",
    "kademlia_cost",
    "kademlia_cost_scalar",
    "kademlia_cost_vectorized",
    "select_kademlia",
    "select_kademlia_dp",
    "select_kademlia_greedy",
]


def xor_distance_class(a: int, b: int) -> int:
    """The XOR distance class: ``bitlength(a XOR b)``.

    Equal to ``space.pastry_distance(a, b)`` for any space containing both
    ids — the identity this whole module rests on.
    """
    return (a ^ b).bit_length()


def kademlia_peer_distance(space: IdSpace, peer: int, pointers: Iterable[int]) -> int:
    """Estimated hops from the best pointer to ``peer`` under XOR routing.

    Independent scalar oracle (does not call into the Pastry kernels);
    returns ``space.bits`` (the worst case) when ``pointers`` is empty.
    """
    best = space.bits
    for pointer in pointers:
        best = min(best, xor_distance_class(pointer, peer))
        if best == 0:
            break
    return best


def kademlia_cost_scalar(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Kademlia pointer set — scalar oracle."""
    pointers = list(core_neighbors) + list(auxiliary)
    return sum(
        weight * (1 + kademlia_peer_distance(space, peer, pointers))
        for peer, weight in frequencies.items()
    )


def kademlia_cost_vectorized(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """NumPy-batched :func:`kademlia_cost_scalar`: the peer×pointer XOR
    matrix with an axis-1 bit-length minimum — byte for byte the Pastry
    kernel, because the metrics coincide."""
    return _cost.pastry_cost_vectorized(space, frequencies, core_neighbors, auxiliary)


def kademlia_cost(
    space: IdSpace,
    frequencies: Mapping[int, float],
    core_neighbors: Iterable[int],
    auxiliary: Iterable[int],
) -> float:
    """Objective value (eq. 1) for a Kademlia pointer set.

    Dispatches to the NumPy kernel for large instances within the exact
    float64 range, the scalar oracle otherwise (including every space
    wider than 53 bits — the canonical 160-bit deployment).
    """
    if _cost._vectorizable(space, len(frequencies)):
        return kademlia_cost_vectorized(space, frequencies, core_neighbors, auxiliary)
    return kademlia_cost_scalar(space, frequencies, core_neighbors, auxiliary)


def _relabel(result: SelectionResult, algorithm: str) -> SelectionResult:
    return replace(result, algorithm=algorithm)


def select_kademlia_dp(problem: SelectionProblem) -> SelectionResult:
    """Optimal XOR-metric selection via the Section IV-A dynamic program.

    Supports QoS delay bounds; raises
    :class:`~repro.util.errors.InfeasibleConstraintError` when they cannot
    be met with ``k`` pointers.
    """
    return _relabel(select_pastry_dp(problem), "kademlia-dp")


def select_kademlia_greedy(problem: SelectionProblem) -> SelectionResult:
    """Optimal XOR-metric selection via the Section IV-B nesting-property
    greedy (Lemma 4.1 holds verbatim: distance classes are prefix
    lengths). Does not accept QoS bounds — use the DP for those."""
    return _relabel(select_pastry_greedy(problem), "kademlia-greedy")


def select_kademlia(problem: SelectionProblem) -> SelectionResult:
    """Solve a Kademlia selection problem with the appropriate algorithm:
    the DP when QoS bounds are present, the faster greedy otherwise."""
    if problem.delay_bounds:
        return select_kademlia_dp(problem)
    return select_kademlia_greedy(problem)
