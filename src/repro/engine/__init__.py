"""Columnar struct-of-arrays simulation engine (DESIGN.md §10).

The object-graph overlays (:mod:`repro.chord`, :mod:`repro.pastry`) are
the ground-truth oracle: every routing decision is a Python-level walk
over per-node sets and sorted lists. That caps figure cells at a few
thousand nodes. This package re-expresses a *frozen* overlay as flat
NumPy arrays — one sorted id array plus CSR neighbor matrices — and
routes an entire batch of lookups as a frontier advanced one hop per
vectorized step.

Layout of the package:

* :mod:`repro.engine.columnar` — the snapshot types
  (:class:`ColumnarChord`, :class:`ColumnarPastry`) and the synthetic
  :func:`build_direct_chord` used by the memory-footprint bench gate.
* :mod:`repro.engine.router` — the batched frontier routers and the
  :class:`BatchRouteResult` fold into :class:`~repro.sim.metrics.
  HopStatistics`.
* :mod:`repro.engine.dispatch` — engine selection (``auto`` /
  ``objects`` / ``columnar``), NumPy gating and the supportability
  rules. This module is import-safe without NumPy; the other two
  require it and are only imported behind the dispatch gate.

The columnar path is *bit-identical* to the object path on the
workloads it supports (stable mode, no faults, no telemetry): the
snapshot copies the exact tables the object router would consult, the
frontier replicates the per-hop decision rules operation for operation,
and the statistics folds are exact integer sums in float64.
"""

from repro.engine.dispatch import (
    COLUMNAR_AUTO_THRESHOLD,
    COLUMNAR_MAX_BITS,
    ENGINES,
    columnar_support,
    numpy_or_none,
    resolve_engine,
)

__all__ = [
    "COLUMNAR_AUTO_THRESHOLD",
    "COLUMNAR_MAX_BITS",
    "ENGINES",
    "columnar_support",
    "numpy_or_none",
    "resolve_engine",
]
