"""Batched frontier routers over columnar snapshots.

Both routers advance a whole batch of in-flight lookups one hop per
vectorized step: gather each active lane's next-hop decision from the
CSR tables, terminate the lanes whose current node believes itself the
destination, advance the rest, repeat until the frontier drains.

The per-lane decision rules replicate the object routers operation for
operation (on the fully-live frozen overlays the dispatch layer
guarantees):

* Chord (:func:`batch_route_chord`): next hop = the table's
  ring-predecessor of the key (``bisect_right`` with the ``[-1]``
  wrap), valid iff its clockwise gap from the owner is in
  ``(0, gap(owner, key)]``; no valid entry terminates the lookup, which
  succeeds iff the current node is the ring's responsible node.
* Pastry (:func:`batch_route_pastry`): per hop, in order — leaf-set
  delivery (arc-coverage test, then numerically-closest of
  ``leaves ∪ {self}``), best routing-cell candidate (greedy or
  proximity ranking), then the numerically-closer-neighbor fallback.

Hop budgets match the object routers: a lane whose hop count exceeds
``4 * bits`` at the top of a step fails with the accumulated count —
the same ``hops = limit + 1`` a stranded object lookup reports.

Termination is guaranteed on any input: every step either terminates a
lane or advances it, and the hop-budget check fails any lane that is
still in flight after ``limit`` forwards, so the frontier drains in at
most ``limit + 2`` steps.

:meth:`BatchRouteResult.fold_into` folds a batch into
:class:`~repro.sim.metrics.HopStatistics` with exact integer sums (all
addends are small integers, exact in float64), producing an accumulator
bit-identical to recording the object results one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.columnar import ColumnarChord, ColumnarPastry

__all__ = ["BatchRouteResult", "batch_route_chord", "batch_route_pastry"]

#: Per-hop pointer-class labels, indexed by the int8 codes the snapshot
#: and the routers use. "leaf" covers both leaf-delivery forwards and
#: candidate forwards resolved by a leaf entry, exactly like the object
#: tracer's attribution.
CHORD_CLASS_NAMES = ("core", "successor", "auxiliary", "unknown")
PASTRY_CLASS_NAMES = ("core", "leaf", "auxiliary", "fallback")


@dataclass
class BatchRouteResult:
    """Outcome arrays for one batch of lookups (lane order = query order).

    ``destinations`` holds ``-1`` where the object router would report
    ``None`` (failed lookups). ``paths``/``path_classes`` are only
    materialized under ``record_paths`` (equivalence tests): ``paths``
    row ``i`` is the visited-id sequence padded with ``-1``;
    ``path_classes`` row ``i`` the per-forward pointer-class codes.
    """

    hops: np.ndarray
    succeeded: np.ndarray
    destinations: np.ndarray
    hops_by_class: dict[str, int]
    paths: np.ndarray | None = None
    path_classes: np.ndarray | None = None

    def fold_into(self, stats) -> None:
        """Fold the batch into a :class:`~repro.sim.metrics.HopStatistics`
        exactly as ``stats.record(result)`` per lookup would (timeouts and
        penalties are structurally zero on the frozen overlay)."""
        total = int(self.hops.size)
        ok = self.succeeded
        successes = int(np.count_nonzero(ok))
        stats.lookups += total
        stats.failures += total - successes
        stats.successes += successes
        winning = self.hops[ok]
        hop_sum = int(winning.sum())
        stats.total_hops += hop_sum
        # latency == hops for every clean lookup; the sums are integer
        # totals well below 2**53, so these float adds are exact.
        stats._sum_latency += float(hop_sum)
        stats._sum_latency_sq += float(np.square(winning).sum())
        if stats.keep_samples:
            stats.per_lookup.extend(int(value) for value in winning)

    def lane_path(self, lane: int) -> list[int]:
        """The visited ids of one lane (requires ``record_paths``)."""
        row = self.paths[lane]
        return [int(value) for value in row[row >= 0]]

    def lane_classes(self, lane: int, overlay: str) -> list[str]:
        """Pointer-class labels of one lane's forwards (requires
        ``record_paths``)."""
        names = CHORD_CLASS_NAMES if overlay == "chord" else PASTRY_CLASS_NAMES
        row = self.path_classes[lane]
        return [names[int(code)] for code in row[row >= 0]]


def _as_lane_indices(ids: np.ndarray, node_ids) -> np.ndarray:
    """Map live node ids to their positions in the sorted id array.

    Large batches run the binary searches in query-sorted order — the
    monotone descent path stays cache-resident, which measures ~4x
    faster than random-order probes — and scatter the results back.
    """
    arr = np.asarray(node_ids, dtype=np.int64)
    if arr.size < 1024:
        return np.searchsorted(ids, arr)
    order = np.argsort(arr)
    out = np.empty(arr.size, dtype=np.int64)
    out[order] = np.searchsorted(ids, arr.take(order))
    return out


# ----------------------------------------------------------------------
# Chord
# ----------------------------------------------------------------------


def batch_route_chord(
    snapshot: ColumnarChord,
    sources,
    keys,
    max_hops: int | None = None,
    record_paths: bool = False,
) -> BatchRouteResult:
    """Route a batch of ``(source, key)`` lookups over a frozen ring."""
    ids = snapshot.ids
    offsets = snapshot.table_offsets
    mask = snapshot.mask
    limit = max_hops if max_hops is not None else 4 * snapshot.bits
    # Guarded gather target: lanes masked out still index *something*.
    table_ids = snapshot.table_ids if snapshot.table_ids.size else np.zeros(1, np.int64)
    table_class = (
        snapshot.table_class if snapshot.table_class.size else np.zeros(1, np.int8)
    )

    all_keys = np.asarray(keys, dtype=np.int64)
    lanes_total = all_keys.size

    hops = np.zeros(lanes_total, dtype=np.int64)
    succeeded = np.zeros(lanes_total, dtype=bool)
    destinations = np.full(lanes_total, -1, dtype=np.int64)
    taken: list[np.ndarray] = []  # chosen positions; classes binned once at the end
    paths = path_classes = None

    dense = snapshot.hop_gaps is not None
    if dense:
        width = snapshot.hop_width
        hop_gaps = snapshot.hop_gaps
        top = 1 << (width.bit_length() - 1)  # largest power of two <= width
        # Gap arithmetic runs in the table's own dtype (uint32 when the
        # id space fits): subtraction wraps mod 2**32 and the mask then
        # yields gap(owner, key) mod 2**bits exactly as int64 would,
        # while halving gather bandwidth and skipping per-step casts.
        ids_gap = snapshot.ids.astype(hop_gaps.dtype, copy=False)
        gap_mask = hop_gaps.dtype.type(mask)
        # When the id space fills the dtype (bits == 32), wrap-around
        # subtraction alone already reduces mod 2**bits.
        needs_mask = int(gap_mask) != np.iinfo(hop_gaps.dtype).max

    # The frontier is kept *compacted*: ``lane`` maps each slot back to
    # the caller's lane, and finishing lanes are filtered out instead of
    # masked, so every step touches only in-flight lookups. Slots sit in
    # key order — the keyed fast path funnels every hop through one
    # global searchsorted, and clustered probe keys roughly triple its
    # throughput (cache-friendly binary-search descent).
    # Unstable introsort: lanes with equal keys route identically, so
    # their relative order cannot affect any per-lane output, and the
    # default sort runs several times faster than a stable one.
    lane = np.argsort(all_keys)
    key = all_keys[lane]
    cur = _as_lane_indices(ids, sources)[lane]
    resp = snapshot.responsible(key)
    if dense:
        key_gap = key.astype(hop_gaps.dtype, copy=False)
    if record_paths:
        paths = np.full((lanes_total, limit + 2), -1, dtype=np.int64)
        paths[lane, 0] = ids[cur]
        path_classes = np.full((lanes_total, limit + 1), -1, dtype=np.int8)

    # Every in-flight slot advances exactly once per step, so a lane
    # finishing at step ``s`` made ``s - 1`` hops — no per-lane counter.
    step = 0
    while lane.size:
        step += 1
        if step > limit + 1:
            # Hop budget exhausted (the object router's loop-top check):
            # survivors keep their accumulated ``limit + 1`` hops and fail.
            hops[lane] = limit + 1
            break
        if dense:
            # Dense fast path: a fixed ceil(log2(hop_width))-step
            # branchless binary search advances, per lane, a running
            # index ``pos`` past the row entries whose gap stays at or
            # below gap(owner, key); the entry before ``pos`` is the
            # next hop and ``pos == base`` means termination (see
            # ColumnarChord). Probes gather from each lane's own row, so
            # they stay cache-resident instead of walking a global
            # array, and they compare in the table's own dtype (one
            # lane-sized cast per step instead of upcasting every
            # gathered probe). The opening probe folds the
            # non-power-of-two remainder (width - top) so the plain
            # halving schedule covers any row width.
            threshold = key_gap - ids_gap[cur]
            if needs_mask:
                threshold &= gap_mask
            base = cur * np.int64(width)
            if top < width:
                pos = base + (hop_gaps[base + (top - 1)] <= threshold) * np.int64(
                    width - top
                )
            else:
                pos = base.copy()
            half = top >> 1
            while half:
                pos += half * (hop_gaps[pos + (half - 1)] <= threshold)
                half >>= 1
            valid = pos > base
            # pos == base means "no valid entry"; the subtraction to the
            # chosen entry's slot happens after compaction so finished
            # lanes never cost a pass and never get dereferenced.
            position = pos
        else:
            # Fallback: per-row vectorized bisect_right over each lane's
            # table slice (single-node ring or bits too wide for the
            # dense pad value).
            owner = ids[cur]
            gap_to_key = (key - owner) & mask
            row_start = offsets[cur]
            row_end = offsets[cur + 1]
            lo = row_start.copy()
            hi = row_end.copy()
            open_ = lo < hi
            while open_.any():
                mid = (lo + hi) >> 1
                vals = table_ids[np.where(open_, mid, 0)]
                go_right = open_ & (vals <= key)
                lo = np.where(go_right, mid + 1, lo)
                hi = np.where(open_ & ~go_right, mid, hi)
                open_ = lo < hi
            index = lo - 1
            empty = row_end == row_start
            index = np.where(index < row_start, row_end - 1, index)  # the [-1] wrap
            position = np.where(empty, 0, index)
            candidate = table_ids[position]
            gap_to_candidate = (candidate - owner) & mask
            valid = ~empty & (gap_to_candidate > 0) & (gap_to_candidate <= gap_to_key)

        if not valid.all():
            # Terminating lanes: the owner believes it is the key's
            # predecessor; it wins iff that matches the ring ground
            # truth. Integer take/compaction beats boolean masks here:
            # one nonzero scan feeds every gather instead of each mask
            # op re-counting the selection.
            keep = np.flatnonzero(valid)
            done = np.flatnonzero(~valid)
            lane_done = lane.take(done)
            owner_done = ids[cur.take(done)] if dense else owner.take(done)
            won = owner_done == resp.take(done)
            succeeded[lane_done] = won
            destinations[lane_done] = np.where(won, owner_done, -1)
            hops[lane_done] = step - 1
            lane = lane.take(keep)
            if dense:
                key_gap = key_gap.take(keep)
            else:
                key = key.take(keep)
            resp = resp.take(keep)
            position = position.take(keep)
            if not lane.size:
                break
        if dense:
            position = position - 1
            cur = snapshot.hop_pos[position]
        else:
            cur = np.searchsorted(ids, table_ids[position])
        taken.append(position)
        if record_paths:
            paths[lane, step] = ids[cur]
            class_source = snapshot.hop_class if dense else table_class
            path_classes[lane, step - 1] = class_source[position]

    if taken:
        class_source = snapshot.hop_class if dense else table_class
        class_counts = np.bincount(
            class_source[np.concatenate(taken)], minlength=4
        )
    else:
        class_counts = np.zeros(4, dtype=np.int64)

    return BatchRouteResult(
        hops=hops,
        succeeded=succeeded,
        destinations=destinations,
        hops_by_class={
            name: int(count)
            for name, count in zip(CHORD_CLASS_NAMES, class_counts)
            if count
        },
        paths=paths,
        path_classes=path_classes,
    )


# ----------------------------------------------------------------------
# Pastry
# ----------------------------------------------------------------------

_LEAF_CODE = 1
_FALLBACK_CODE = 3


def batch_route_pastry(
    snapshot: ColumnarPastry,
    sources,
    keys,
    mode: str = "proximity",
    max_hops: int | None = None,
    record_paths: bool = False,
) -> BatchRouteResult:
    """Route a batch of ``(source, key)`` lookups over a frozen network."""
    if mode not in ("greedy", "proximity"):
        raise ValueError(f"unknown routing mode {mode!r}")
    ids = snapshot.ids
    bits = snapshot.bits
    mask = snapshot.mask
    size = snapshot.size
    limit = max_hops if max_hops is not None else 4 * bits
    nbr_ids = snapshot.nbr_ids if snapshot.nbr_ids.size else np.zeros(1, np.int64)
    nbr_class = snapshot.nbr_class if snapshot.nbr_class.size else np.zeros(1, np.int8)
    nbr_lat = snapshot.nbr_lat if snapshot.nbr_lat.size else np.zeros(1, np.float64)

    keys = np.asarray(keys, dtype=np.int64)
    cur = _as_lane_indices(ids, sources)
    lanes_total = cur.size
    responsible = snapshot.responsible(keys)

    hops = np.zeros(lanes_total, dtype=np.int64)
    succeeded = np.zeros(lanes_total, dtype=bool)
    destinations = np.full(lanes_total, -1, dtype=np.int64)
    class_counts = np.zeros(4, dtype=np.int64)
    paths = path_classes = None
    if record_paths:
        paths = np.full((lanes_total, limit + 2), -1, dtype=np.int64)
        paths[:, 0] = ids[cur]
        path_classes = np.full((lanes_total, limit + 1), -1, dtype=np.int8)

    def circ(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        gap = (b - a) & mask
        return np.minimum(gap, size - gap)

    def finish(lanes: np.ndarray) -> None:
        owner_done = ids[cur[lanes]]
        won = owner_done == responsible[lanes]
        succeeded[lanes] = won
        destinations[lanes] = np.where(won, owner_done, -1)

    def forward(lanes: np.ndarray, targets: np.ndarray, codes: np.ndarray) -> None:
        nonlocal class_counts
        class_counts = class_counts + np.bincount(codes, minlength=4)
        hops[lanes] += 1
        cur[lanes] = np.searchsorted(ids, targets)
        if record_paths:
            paths[lanes, hops[lanes]] = targets
            path_classes[lanes, hops[lanes] - 1] = codes

    active = np.arange(lanes_total, dtype=np.int64)
    while active.size:
        overrun = hops[active] > limit
        if overrun.any():
            active = active[~overrun]
            if not active.size:
                break
        advanced: list[np.ndarray] = []

        # --- Stage 1: leaf-set delivery -------------------------------
        cur_a = cur[active]
        key_a = keys[active]
        own = ids[cur_a]
        isolated = snapshot.no_leaves[cur_a]
        if isolated.any():
            finish(active[isolated])  # deliver locally, as the object router
        considered = active[~isolated]
        if considered.size:
            cur_c = cur[considered]
            key_c = keys[considered]
            arc_gap = (key_c - snapshot.arc_start[cur_c]) & mask
            covered = snapshot.covers_all[cur_c] | (arc_gap <= snapshot.span[cur_c])
            deliver = considered[covered]
            if deliver.size:
                rows = snapshot.leaf_mat[cur[deliver]]
                key_d = keys[deliver][:, None]
                distance = circ(rows, key_d)
                closest = distance.min(axis=1)
                # Lexicographic (circ, id) min: among the closest columns
                # take the smallest id; padding columns repeat the owner.
                tied = np.where(distance == closest[:, None], rows, size)
                target = tied.min(axis=1)
                own_d = ids[cur[deliver]]
                at_self = target == own_d
                if at_self.any():
                    finish(deliver[at_self])
                moving = deliver[~at_self]
                if moving.size:
                    forward(
                        moving,
                        target[~at_self],
                        np.full(moving.size, _LEAF_CODE, dtype=np.int8),
                    )
                    advanced.append(moving)
            remaining = considered[~covered]
        else:
            remaining = considered

        # --- Stage 2: routing-cell candidates -------------------------
        if remaining.size:
            cur_r = cur[remaining]
            key_r = keys[remaining]
            own_r = ids[cur_r]
            # key != own here: an uncovered lane cannot sit on its key
            # (the arc always contains the node itself), so the xor is
            # nonzero and the prefix row well-defined.
            xor = own_r ^ key_r
            bit_length = np.frexp(xor.astype(np.float64))[1]
            row = np.int64(bits) - bit_length
            starts = snapshot.row_ptr[cur_r, row]
            ends = snapshot.row_ptr[cur_r, row + 1]
            lens = ends - starts
            with_candidates = lens > 0
            chooser = remaining[with_candidates]
            if chooser.size:
                starts_c = starts[with_candidates]
                lens_c = lens[with_candidates]
                key_c2 = key_r[with_candidates]
                best_rank = np.full(chooser.size, np.iinfo(np.int64).max, np.int64)
                best_metric = np.full(chooser.size, np.inf, np.float64)
                best_id = np.full(chooser.size, size, np.int64)
                best_entry = np.zeros(chooser.size, np.int64)
                radius = snapshot.radius_max[cur[chooser]]
                for offset in range(int(lens_c.max())):
                    has = offset < lens_c
                    entry = np.where(has, starts_c + offset, 0)
                    cand = nbr_ids[entry]
                    numeric = circ(cand, key_c2)
                    if mode == "greedy":
                        cand_xor = cand ^ key_c2
                        cand_lcp = np.int64(bits) - np.where(
                            cand_xor == 0,
                            np.int64(0),
                            np.frexp(cand_xor.astype(np.float64))[1].astype(np.int64),
                        )
                        rank = -cand_lcp
                        metric = numeric.astype(np.float64)
                    else:
                        inside = numeric <= radius
                        rank = np.where(inside, np.int64(0), np.int64(1))
                        metric = np.where(
                            inside, numeric.astype(np.float64), nbr_lat[entry]
                        )
                    better = has & (
                        (rank < best_rank)
                        | (
                            (rank == best_rank)
                            & ((metric < best_metric) | ((metric == best_metric) & (cand < best_id)))
                        )
                    )
                    best_rank = np.where(better, rank, best_rank)
                    best_metric = np.where(better, metric, best_metric)
                    best_id = np.where(better, cand, best_id)
                    best_entry = np.where(better, entry, best_entry)
                forward(chooser, best_id, nbr_class[best_entry])
                advanced.append(chooser)
            remaining = remaining[~with_candidates]

        # --- Stage 3: numerically-closer fallback ---------------------
        if remaining.size:
            cur_f = cur[remaining]
            key_f = keys[remaining]
            own_f = ids[cur_f]
            starts = snapshot.row_ptr[cur_f, 0]
            ends = snapshot.row_ptr[cur_f, bits]
            lens = ends - starts
            best_distance = circ(own_f, key_f)
            best_id = np.full(remaining.size, -1, np.int64)
            max_len = int(lens.max()) if lens.size else 0
            for offset in range(max_len):
                has = offset < lens
                entry = np.where(has, starts + offset, 0)
                cand = nbr_ids[entry]
                distance = circ(cand, key_f)
                update = has & (
                    (distance < best_distance)
                    | ((distance == best_distance) & (best_id >= 0) & (cand < best_id))
                )
                best_distance = np.where(update, distance, best_distance)
                best_id = np.where(update, cand, best_id)
            stuck = best_id < 0
            if stuck.any():
                finish(remaining[stuck])
            moving = remaining[~stuck]
            if moving.size:
                forward(
                    moving,
                    best_id[~stuck],
                    np.full(moving.size, _FALLBACK_CODE, dtype=np.int8),
                )
                advanced.append(moving)

        active = (
            np.sort(np.concatenate(advanced)) if advanced else np.empty(0, np.int64)
        )

    return BatchRouteResult(
        hops=hops,
        succeeded=succeeded,
        destinations=destinations,
        hops_by_class={
            name: int(count)
            for name, count in zip(PASTRY_CLASS_NAMES, class_counts)
            if count
        },
        paths=paths,
        path_classes=path_classes,
    )
