"""Engine selection: objects vs columnar, with NumPy gating.

The ``engine`` field on :class:`~repro.sim.runner.ExperimentConfig`
accepts three values:

* ``"objects"`` — always route over the object-graph overlays.
* ``"columnar"`` — demand the vectorized engine; raises
  :class:`~repro.util.errors.ConfigurationError` with the blocking
  reason when the cell is unsupported (NumPy missing, faults active,
  oversized id space, ...).
* ``"auto"`` (default) — columnar when the cell is supported *and*
  large enough that the batch setup cost amortizes
  (:data:`COLUMNAR_AUTO_THRESHOLD` nodes); objects otherwise. The
  oracle-dispatch pattern from PR 1's scalar-vs-vectorized kernels:
  small inputs take the transparent path, big inputs the fast one, and
  both produce bit-identical results.

Supportability is intentionally conservative. The columnar engine
freezes the overlay before routing, so anything that mutates routing
state mid-stream — fault planes (evictions, message drops), churn,
retry policies with observable backoff — stays on the object path.
Telemetry/trace instrumentation also forces objects: the per-hop
callback surface is exactly what the frontier batches away.
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError

__all__ = [
    "COLUMNAR_AUTO_THRESHOLD",
    "COLUMNAR_MAX_BITS",
    "ENGINES",
    "columnar_support",
    "numpy_or_none",
    "resolve_engine",
]

ENGINES = ("auto", "objects", "columnar")

#: ``auto`` switches to columnar at this many nodes. Below it the object
#: path wins or ties: snapshot construction is O(total table entries)
#: and the frontier pays fixed per-step numpy overhead.
COLUMNAR_AUTO_THRESHOLD = 512

#: The vectorized routers hold ids in int64 and take bit lengths through
#: the float64 mantissa (``np.frexp``), which is exact only below 2**53.
#: 52 bits covers the paper's 32-bit spaces with a margin; larger spaces
#: stay on the object path (``IdSpace`` itself allows up to 256 bits).
COLUMNAR_MAX_BITS = 52

_numpy_checked = False
_numpy_module = None


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when not installed."""
    global _numpy_checked, _numpy_module
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised on numpy-less boxes
            _numpy_module = None
        else:
            _numpy_module = numpy
        _numpy_checked = True
    return _numpy_module


def columnar_support(config) -> tuple[bool, str]:
    """``(supported, reason)`` — can this stable cell run columnar?

    ``reason`` is empty when supported, else the first blocking rule
    (the message an explicit ``engine="columnar"`` request fails with).
    """
    if numpy_or_none() is None:
        return False, "numpy is not installed"
    if getattr(config, "overlay", None) == "kademlia":
        return False, "the columnar engine implements chord and pastry routing only"
    if getattr(config, "duration", None) is not None and hasattr(config, "queries_per_second"):
        return False, "churn mode mutates routing state mid-stream"
    if config.faults_active:
        return False, "fault injection mutates routing state mid-stream"
    if config.retry is not None:
        return False, "an explicit retry policy is only observable on the object path"
    if getattr(config, "budget_plan_active", False):
        return False, (
            "global budget plans install heterogeneous per-node quotas, which "
            "the uniform-k columnar install path does not model"
        )
    if config.bits > COLUMNAR_MAX_BITS:
        return False, (
            f"bits={config.bits} exceeds the columnar engine's exact-arithmetic "
            f"limit of {COLUMNAR_MAX_BITS}"
        )
    return True, ""


def resolve_engine(config, telemetry_active: bool = False) -> str:
    """Resolve ``config.engine`` to ``"objects"`` or ``"columnar"``.

    ``telemetry_active`` marks a run with an enabled telemetry runtime
    attached; the columnar engine has no per-hop instrumentation surface,
    so telemetry forces (or, for explicit ``columnar``, refuses) objects.
    """
    engine = getattr(config, "engine", "auto")
    if engine == "objects":
        return "objects"
    supported, reason = columnar_support(config)
    if engine == "columnar":
        if telemetry_active:
            raise ConfigurationError(
                "engine='columnar' cannot run with telemetry attached: the "
                "vectorized frontier has no per-hop instrumentation surface"
            )
        if not supported:
            raise ConfigurationError(f"engine='columnar' unsupported for this cell: {reason}")
        return "columnar"
    # auto
    if telemetry_active or not supported or config.n < COLUMNAR_AUTO_THRESHOLD:
        return "objects"
    return "columnar"
