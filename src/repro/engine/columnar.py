"""Columnar struct-of-arrays snapshots of frozen overlays.

A snapshot copies a *stable* overlay's routing state into flat NumPy
``int64`` arrays sized for cache-friendly batched gathers:

ColumnarChord
    ``ids``           (n,)    sorted live node ids — the ring.
    ``table_offsets`` (n+1,)  CSR row pointers into the merged tables.
    ``table_ids``     (E,)    each node's :class:`~repro.chord.routing.
                              RingTable` entries, ascending, verbatim —
                              the same array ``bisect_right`` walks.
    ``table_class``   (E,)    int8 pointer class per entry (strongest
                              claim: 0=core, 1=successor, 2=auxiliary,
                              3=unknown), matching ``_pointer_class``.

ColumnarPastry
    ``ids``        (n,)          sorted live node ids.
    ``row_ptr``    (n, bits+1)   per-node per-prefix-row CSR pointers:
                                 the cell a key addresses is row
                                 ``lcp(node, key)`` (binary digits).
    ``nbr_ids``    (E,)          routing-table entries grouped by row.
    ``nbr_class``  (E,)          int8 (0=core, 1=leaf, 2=auxiliary).
    ``nbr_lat``    (E,)          proximity latency node->entry, float64.
    ``leaf_mat``   (n, Lmax)     leaf sets padded with the owner's own
                                 id (so a row min over ``(circ, id)`` is
                                 exactly ``min(leaves ∪ {self})``).
    plus per-node leaf-arc geometry (``covers_all``, ``arc_start``,
    ``span``, ``radius_max``, ``no_leaves``) precomputed once — the
    quantities ``_leaf_delivery_target`` re-derives per hop.

Snapshots are verbatim: they copy whatever the object tables hold right
now, including (in verification scenarios) stale pointers to dead
nodes. The batched routers assume a fully-live frozen overlay — the
dispatch layer guarantees that for experiment cells, and the verify
integration only routes on all-alive scenarios.

:func:`build_direct_chord` synthesizes a stabilized ring's columnar
state *without* instantiating objects — fully vectorized — so the
memory-footprint bench can gate bytes-per-node at n=10^5 in
milliseconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ColumnarChord",
    "ColumnarPastry",
    "snapshot_chord",
    "snapshot_pastry",
    "build_direct_chord",
]

#: Pointer-class codes shared by both snapshots and the batch routers.
#: Chord: core > successor > auxiliary (``chord.routing._pointer_class``);
#: Pastry: core > leaf > auxiliary (``pastry.routing._pointer_class``).
CHORD_CLASSES = ("core", "successor", "auxiliary", "unknown")
PASTRY_CLASSES = ("core", "leaf", "auxiliary")


@dataclass
class ColumnarChord:
    """Frozen Chord ring as flat arrays (see module docstring).

    ``hop_gaps``/``hop_pos``/``hop_class`` are the *dense hop tables*:
    the CSR entries re-laid-out as ``n x hop_width`` row-major matrices
    (stored flat), each row sorted ascending by clockwise gap from the
    owner and padded with a sentinel gap no real entry can reach. The
    object router's ``bisect_right`` + wrap + validity test is
    equivalent to "table entry with the largest gap(owner, entry) <=
    gap(owner, key), or terminate when none exists", so the whole
    frontier's next hop is a fixed ``log2(hop_width)``-step branchless
    binary search over these rows — each probe gathers from the lane's
    own (cache-resident) row instead of binary-searching a global
    array. ``hop_pos`` holds each entry's *position* in ``ids`` rather
    than its id, so advancing a lane is a gather, not another search.
    ``hop_width`` is one more than the longest row, so every row keeps
    at least one sentinel column; the search runs one branchless
    opening probe to cover the non-power-of-two remainder, then a fixed
    power-of-two halving schedule. Pad columns carry the sentinel gap
    but *duplicate* the row's max-gap entry in ``hop_pos`` /
    ``hop_class``, which makes every gathered slot well-defined. The
    tables are ``None`` when the sentinel cannot dominate real gaps
    (``bits >= 62``) or some row is empty; the router then falls back
    to per-row CSR binary search.
    """

    bits: int
    ids: np.ndarray
    table_offsets: np.ndarray
    table_ids: np.ndarray
    table_class: np.ndarray
    hop_width: int = 0
    hop_gaps: np.ndarray | None = None
    hop_pos: np.ndarray | None = None
    hop_class: np.ndarray | None = None

    @property
    def n(self) -> int:
        return int(self.ids.size)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def nbytes(self) -> int:
        """Total snapshot footprint in bytes."""
        keyed = 0
        for extra in (self.hop_gaps, self.hop_pos, self.hop_class):
            if extra is not None:
                keyed += extra.nbytes
        return int(
            self.ids.nbytes
            + self.table_offsets.nbytes
            + self.table_ids.nbytes
            + self.table_class.nbytes
            + keyed
        )

    @property
    def bytes_per_node(self) -> float:
        return self.nbytes / max(1, self.n)

    def responsible(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized ring-predecessor oracle: ``ids[bisect_right(ids,
        key) - 1]`` with the same ``[-1]`` wrap as the object ring."""
        index = np.searchsorted(self.ids, keys, side="right") - 1
        return self.ids[index]  # index -1 wraps to the largest id


@dataclass
class ColumnarPastry:
    """Frozen Pastry network as flat arrays (see module docstring)."""

    bits: int
    ids: np.ndarray
    row_ptr: np.ndarray
    nbr_ids: np.ndarray
    nbr_class: np.ndarray
    nbr_lat: np.ndarray
    leaf_mat: np.ndarray
    no_leaves: np.ndarray
    covers_all: np.ndarray
    arc_start: np.ndarray
    span: np.ndarray
    radius_max: np.ndarray

    @property
    def n(self) -> int:
        return int(self.ids.size)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def size(self) -> int:
        return 1 << self.bits

    @property
    def nbytes(self) -> int:
        return int(
            self.ids.nbytes
            + self.row_ptr.nbytes
            + self.nbr_ids.nbytes
            + self.nbr_class.nbytes
            + self.nbr_lat.nbytes
            + self.leaf_mat.nbytes
            + self.no_leaves.nbytes
            + self.covers_all.nbytes
            + self.arc_start.nbytes
            + self.span.nbytes
            + self.radius_max.nbytes
        )

    @property
    def bytes_per_node(self) -> float:
        return self.nbytes / max(1, self.n)

    def responsible(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized numerically-closest oracle, lower id on ties —
        the same two-candidate bisect the object network uses."""
        n = self.n
        index = np.searchsorted(self.ids, keys, side="left")
        above = self.ids[index % n]
        below = self.ids[index - 1]  # index 0 wraps to the largest id
        return _closer_on_ring(self.size, keys, above, below)


def _closer_on_ring(size: int, keys: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane ``min((circ(c, key), c) for c in (a, b))``."""
    mask = size - 1
    ga = (keys - a) & mask
    da = np.minimum(ga, size - ga)
    gb = (keys - b) & mask
    db = np.minimum(gb, size - gb)
    take_b = (db < da) | ((db == da) & (b < a))
    return np.where(take_b, b, a)


def _attach_hop_tables(snapshot: ColumnarChord) -> ColumnarChord:
    """Fill the dense gap-sorted hop tables in place (see ColumnarChord).

    Entries are grouped per row and sorted ascending by gap via one
    global ``(row, gap)`` lexsort; each row then lands in its matrix row
    left-aligned. ``hop_width`` is ``max_count + 1``, so every row keeps
    at least one pad column. Pad columns carry the dtype's maximum gap
    while duplicating the row's *last real entry's* position and class:
    for any ``gap(owner, key)`` below the pad value the search count is
    exact, and in the one collision case (``bits == 32``, uint32 gaps,
    key exactly one step counter-clockwise of the owner) the overcount
    lands on a pad that forwards to the same node the true maximum-gap
    entry would. Gaps are in ``[1, 2**bits)`` (entries never equal
    their owner), so a zero count means "no valid next hop" exactly
    like the object table's ``None``. Rows are stored as uint32 when
    gaps fit (bits <= 32) — halving probe bandwidth — and int64
    otherwise; positions are int32 (a ring index always fits).

    Rings with an empty table row (only the single-node ring, which has
    no successor) keep ``hop_gaps`` as ``None`` and use the CSR
    fallback, as do id spaces whose gaps would collide with the int64
    pad value (``bits >= 62``).
    """
    n = snapshot.n
    counts = np.diff(snapshot.table_offsets)
    if n == 0 or snapshot.bits >= 62 or int(counts.min()) == 0:
        return snapshot
    width = int(counts.max()) + 1
    row = np.repeat(np.arange(n, dtype=np.int64), counts)
    col = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
        snapshot.table_offsets[:-1], counts
    )
    owner = np.repeat(snapshot.ids, counts)
    gap = (snapshot.table_ids - owner) & snapshot.mask
    order = np.lexsort((gap, row))
    slot = row * width + col  # CSR order == (row, within-row rank) order
    gap_dtype = np.uint32 if snapshot.bits <= 32 else np.int64
    gaps_mat = np.full(n * width, np.iinfo(gap_dtype).max, dtype=gap_dtype)
    gaps_mat[slot] = gap[order].astype(gap_dtype)
    # Entries are live node ids, so their ring positions are exact.
    pos_sorted = np.searchsorted(snapshot.ids, snapshot.table_ids[order]).astype(np.int32)
    class_sorted = snapshot.table_class[order]
    row_end = snapshot.table_offsets[1:] - 1  # each row's max-gap entry
    pos_mat = np.repeat(pos_sorted[row_end], width)
    pos_mat[slot] = pos_sorted
    class_mat = np.repeat(class_sorted[row_end], width)
    class_mat[slot] = class_sorted
    snapshot.hop_width = width
    snapshot.hop_gaps = gaps_mat
    snapshot.hop_pos = pos_mat
    snapshot.hop_class = class_mat
    return snapshot


# ----------------------------------------------------------------------
# Snapshots from live overlays
# ----------------------------------------------------------------------


def snapshot_chord(ring) -> ColumnarChord:
    """Materialize a :class:`ColumnarChord` from a live ring, verbatim."""
    alive = ring.alive_ids()
    ids = np.asarray(alive, dtype=np.int64)
    offsets = np.zeros(len(alive) + 1, dtype=np.int64)
    chunks: list[list[int]] = []
    classes: list[np.ndarray] = []
    for position, node_id in enumerate(alive):
        node = ring.node(node_id)
        entries = node.table.entries()  # ascending, the bisect target
        offsets[position + 1] = offsets[position] + len(entries)
        chunks.append(entries)
        row = np.full(len(entries), 3, dtype=np.int8)
        for index, entry in enumerate(entries):
            if entry in node.core:
                row[index] = 0
            elif entry in node.successors:
                row[index] = 1
            elif entry in node.auxiliary:
                row[index] = 2
        classes.append(row)
    table_ids = (
        np.concatenate([np.asarray(chunk, dtype=np.int64) for chunk in chunks])
        if offsets[-1]
        else np.empty(0, dtype=np.int64)
    )
    table_class = (
        np.concatenate(classes) if offsets[-1] else np.empty(0, dtype=np.int8)
    )
    return _attach_hop_tables(
        ColumnarChord(
            bits=ring.space.bits,
            ids=ids,
            table_offsets=offsets,
            table_ids=table_ids,
            table_class=table_class,
        )
    )


def snapshot_pastry(network) -> ColumnarPastry:
    """Materialize a :class:`ColumnarPastry` from a live network.

    Only the binary-digit configuration (``digit_bits == 1``, the
    default everywhere) is snapshot-able: with one bit per digit the
    cell a key addresses collapses to "all neighbors at prefix row
    ``lcp(node, key)``", which is what ``row_ptr`` indexes.
    """
    if network.digit_bits != 1:
        raise ValueError(
            f"columnar pastry requires digit_bits=1, got {network.digit_bits}"
        )
    space = network.space
    bits = space.bits
    alive = network.alive_ids()
    n = len(alive)
    ids = np.asarray(alive, dtype=np.int64)

    row_ptr = np.zeros((n, bits + 1), dtype=np.int64)
    nbr_chunks: list[int] = []
    class_chunks: list[int] = []
    lat_chunks: list[float] = []
    leaf_rows: list[list[int]] = []
    no_leaves = np.zeros(n, dtype=bool)
    covers_all = np.zeros(n, dtype=bool)
    arc_start = np.zeros(n, dtype=np.int64)
    span = np.zeros(n, dtype=np.int64)
    radius_max = np.zeros(n, dtype=np.int64)

    proximity = network.proximity
    radius = network.leaf_radius
    total = 0
    for position, node_id in enumerate(alive):
        node = network.node(node_id)
        # Group the routing-cell entries by prefix row. With binary
        # digits each (row, digit) cell is the only cell at its row.
        per_row: dict[int, list[int]] = {}
        for (row, __), bucket in node.cells.items():
            per_row.setdefault(row, []).extend(sorted(bucket))
        counts = row_ptr[position]
        counts[0] = total
        for row in range(bits):
            entries = per_row.get(row, ())
            for entry in entries:
                nbr_chunks.append(entry)
                if entry in node.core:
                    class_chunks.append(0)
                elif entry in node.leaves:
                    class_chunks.append(1)
                else:
                    class_chunks.append(2)
                lat_chunks.append(proximity.latency(node_id, entry))
            total += len(entries)
            counts[row + 1] = total

        # Leaf-arc geometry, exactly as _leaf_delivery_target derives it.
        leaves = sorted(node.leaves)
        leaf_rows.append(leaves)
        if not leaves:
            no_leaves[position] = True
            continue
        by_clockwise = sorted(leaves, key=lambda leaf: space.gap(node_id, leaf))
        by_counter = sorted(leaves, key=lambda leaf: space.gap(leaf, node_id))
        clockwise_extent = space.gap(node_id, by_clockwise[:radius][-1])
        counter_extent = space.gap(by_counter[:radius][-1], node_id)
        arc = clockwise_extent + counter_extent
        span[position] = arc
        covers_all[position] = arc >= space.size
        arc_start[position] = space.add(node_id, -counter_extent)
        radius_max[position] = max(
            _circular(space, node_id, leaf) for leaf in leaves
        )

    # Width lmax + 1: even a full row keeps one own-id padding column, so
    # the row min ranges over ``leaves ∪ {self}`` exactly.
    lmax = max((len(row) for row in leaf_rows), default=0)
    leaf_mat = np.repeat(ids[:, None], lmax + 1, axis=1)
    for position, row in enumerate(leaf_rows):
        if row:
            leaf_mat[position, : len(row)] = row

    return ColumnarPastry(
        bits=bits,
        ids=ids,
        row_ptr=row_ptr,
        nbr_ids=np.asarray(nbr_chunks, dtype=np.int64),
        nbr_class=np.asarray(class_chunks, dtype=np.int8),
        nbr_lat=np.asarray(lat_chunks, dtype=np.float64),
        leaf_mat=leaf_mat,
        no_leaves=no_leaves,
        covers_all=covers_all,
        arc_start=arc_start,
        span=span,
        radius_max=radius_max,
    )


def _circular(space, a: int, b: int) -> int:
    gap = space.gap(a, b)
    return min(gap, space.size - gap)


# ----------------------------------------------------------------------
# Direct synthesis (memory-footprint gate)
# ----------------------------------------------------------------------


def build_direct_chord(
    n: int,
    bits: int = 32,
    k: int | None = None,
    seed: int = 0,
    successor_list_size: int = 4,
) -> ColumnarChord:
    """Synthesize a stabilized ring's columnar state without objects.

    Produces the same *shape* of state ``snapshot_chord`` would emit for
    a fresh ``ChordRing.build(n)`` plus ``k`` random auxiliaries per
    node: fingers are the true first-live-node-per-interval entries,
    successor lists the next live nodes clockwise. Auxiliary ids are
    uniform random (selection outputs depend on workload, which the
    footprint does not). Entirely vectorized — n=10^5 takes
    milliseconds — so the bench can gate bytes-per-node at scales the
    object graph cannot reach.
    """
    if k is None:
        k = max(1, n.bit_length() - 1)
    mask = (1 << bits) - 1
    rng = random.Random(seed)
    ids = np.asarray(sorted(rng.sample(range(1 << bits), n)), dtype=np.int64)

    columns: list[np.ndarray] = []
    own = ids
    # Fingers: first live id in [own + 2^i, own + 2^(i+1)).
    for i in range(bits):
        low = (own + (1 << i)) & mask
        index = np.searchsorted(ids, low)
        candidate = ids[index % n]
        gap = (candidate - low) & mask
        finger = np.where((gap < (1 << i)) & (candidate != own), candidate, own)
        columns.append(finger)
    # Successor list: the next live nodes clockwise.
    order = np.arange(n, dtype=np.int64)
    for step in range(1, successor_list_size + 1):
        successor = ids[(order + step) % n]
        columns.append(np.where(successor != own, successor, own))
    # Auxiliaries: k uniform random other nodes per node.
    aux_rng = np.random.default_rng(seed ^ 0x9E3779B9)
    for __ in range(k):
        pick = ids[aux_rng.integers(0, n, size=n)]
        columns.append(np.where(pick != own, pick, own))

    # Merge + dedupe per row (own id doubles as the "absent" sentinel).
    matrix = np.sort(np.stack(columns, axis=1), axis=1)
    keep = np.ones_like(matrix, dtype=bool)
    keep[:, 1:] = matrix[:, 1:] != matrix[:, :-1]
    keep &= matrix != own[:, None]
    counts = keep.sum(axis=1)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    table_ids = matrix[keep]
    # Class attribution is irrelevant for the footprint; mark unknown.
    table_class = np.full(table_ids.size, 3, dtype=np.int8)
    return _attach_hop_tables(
        ColumnarChord(
            bits=bits,
            ids=ids,
            table_offsets=offsets,
            table_ids=table_ids,
            table_class=table_class,
        )
    )
