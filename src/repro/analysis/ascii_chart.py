"""Terminal line charts for figure results.

The original figures are line plots; for a terminal-only environment this
renders each :class:`~repro.experiments.figures.FigureResult` as an ASCII
grid: one marker per series, y = percentage reduction, x = the figure's
sweep variable. Used by ``python -m repro figure N --chart``.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.util.errors import ConfigurationError

__all__ = ["render_chart"]

_MARKERS = "ox*+#@"


def render_chart(result: FigureResult, width: int = 60, height: int = 16) -> str:
    """Render a figure as an ASCII chart (markers per series + legend)."""
    if width < 20 or height < 6:
        raise ConfigurationError("chart needs width >= 20 and height >= 6")
    points = [
        (point.x, point.improvement, _MARKERS[index % len(_MARKERS)])
        for index, series in enumerate(result.series)
        for point in series.points
    ]
    if not points:
        return f"{result.figure_id}: (no data)"
    xs = [x for x, __, __ in points]
    ys = [y for __, y, __ in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for __ in range(height)]
    for x, y, marker in points:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][column] = marker

    lines = [f"{result.figure_id}: {result.title}"]
    for row_index, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * row_index / (height - 1)
        lines.append(f"{y_value:6.1f}% |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    left = f"{_format(x_lo)}"
    right = f"{_format(x_hi)}"
    lines.append(" " * 9 + left + " " * max(1, width - len(left) - len(right)) + right)
    lines.append(" " * 9 + f"x = {result.x_label}")
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} = {series.label}"
        for index, series in enumerate(result.series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def _format(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:g}"
