"""Terminal line charts for figure results and telemetry series.

The original figures are line plots; for a terminal-only environment this
renders each :class:`~repro.experiments.figures.FigureResult` as an ASCII
grid: one marker per series, y = percentage reduction, x = the figure's
sweep variable. Used by ``python -m repro figure N --chart``.

:func:`render_sparkline` and :func:`render_series_table` are the building
blocks of the ``repro metrics`` dashboard: compact one-line unicode
sparklines for round-clocked telemetry series, and an aligned multi-series
table (name, min / last / max, sparkline) so the per-round evolution of a
whole registry fits one screen.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.figures import FigureResult
from repro.util.errors import ConfigurationError

__all__ = ["render_chart", "render_sparkline", "render_series_table"]

_MARKERS = "ox*+#@"

#: Eight-level block ramp used by sparklines (lowest to highest).
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Placeholder for missing points (NaN / ``None`` samples).
SPARK_GAP = "·"


def render_chart(result: FigureResult, width: int = 60, height: int = 16) -> str:
    """Render a figure as an ASCII chart (markers per series + legend)."""
    if width < 20 or height < 6:
        raise ConfigurationError("chart needs width >= 20 and height >= 6")
    points = [
        (point.x, point.improvement, _MARKERS[index % len(_MARKERS)])
        for index, series in enumerate(result.series)
        for point in series.points
    ]
    if not points:
        return f"{result.figure_id}: (no data)"
    xs = [x for x, __, __ in points]
    ys = [y for __, y, __ in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for __ in range(height)]
    for x, y, marker in points:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][column] = marker

    lines = [f"{result.figure_id}: {result.title}"]
    for row_index, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * row_index / (height - 1)
        lines.append(f"{y_value:6.1f}% |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    left = f"{_format(x_lo)}"
    right = f"{_format(x_hi)}"
    lines.append(" " * 9 + left + " " * max(1, width - len(left) - len(right)) + right)
    lines.append(" " * 9 + f"x = {result.x_label}")
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} = {series.label}"
        for index, series in enumerate(result.series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def _format(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


def _is_missing(value) -> bool:
    return value is None or (isinstance(value, float) and math.isnan(value))


def render_sparkline(values: Sequence[float | None]) -> str:
    """One-line sparkline over ``values``.

    Missing points (``None`` or NaN — telemetry gauges emit both for
    "no data this round") render as :data:`SPARK_GAP`; an empty or
    all-missing series renders as gaps only / the empty string. A
    degenerate range — every present value equal, which covers both
    constant and single-point series — renders at the middle ramp
    level: a flat gauge is data, not absence, and the bottom glyph
    falsely reads as "zero" next to rows that do span a range.
    """
    finite = [float(v) for v in values if not _is_missing(v)]
    if not finite:
        return SPARK_GAP * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in values:
        if _is_missing(value):
            chars.append(SPARK_GAP)
            continue
        if span == 0.0:
            chars.append(SPARK_CHARS[len(SPARK_CHARS) // 2])
            continue
        level = int((float(value) - lo) / span * (len(SPARK_CHARS) - 1))
        chars.append(SPARK_CHARS[level])
    return "".join(chars)


def render_series_table(
    series: Sequence[tuple[str, Sequence[float | None]]],
    value_width: int = 10,
) -> str:
    """Aligned multi-series table: label, min / last / max, sparkline.

    ``series`` is an ordered sequence of ``(label, values)`` pairs — one
    row each, sharing column alignment so the dashboard scans vertically.
    """
    if not series:
        return "(no series)"
    label_width = max(len(label) for label, __ in series)
    lines = []
    for label, values in series:
        finite = [float(v) for v in values if not _is_missing(v)]
        if finite:
            lo, hi = min(finite), max(finite)
            last = next(
                (float(v) for v in reversed(list(values)) if not _is_missing(v)), None
            )
            stats = (
                f"{_spark_num(lo):>{value_width}} "
                f"{_spark_num(last):>{value_width}} "
                f"{_spark_num(hi):>{value_width}}"
            )
        else:
            dash = "-"
            stats = f"{dash:>{value_width}} {dash:>{value_width}} {dash:>{value_width}}"
        lines.append(f"{label:<{label_width}}  {stats}  {render_sparkline(values)}")
    header = (
        f"{'series':<{label_width}}  "
        f"{'min':>{value_width}} {'last':>{value_width}} {'max':>{value_width}}"
    )
    return "\n".join([header] + lines)


def _spark_num(value: float | None) -> str:
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.3g}"
