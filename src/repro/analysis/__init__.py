"""Analytic models and terminal visualization for experiment results."""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.model import (
    core_only_upper_bound,
    expected_uniform_hops,
    lower_bound_cost,
    predict_improvement,
)

__all__ = [
    "core_only_upper_bound",
    "expected_uniform_hops",
    "lower_bound_cost",
    "predict_improvement",
    "render_chart",
]
