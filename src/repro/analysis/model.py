"""Back-of-envelope analytic model of the paper's metric.

Used for two things:

1. **Bounds** — :func:`lower_bound_cost` gives a rigorous lower bound on
   eq. 1 for any pointer budget (every solver result is tested against
   it), and :func:`core_only_upper_bound` an upper bound from running no
   auxiliary pointers at all.
2. **Predictions** — :func:`predict_improvement` is the coarse closed-form
   story behind the figures: with budget ``k``, the optimal scheme covers
   the top-``k`` destinations (zipf head mass) at one hop and pays the
   core-routing average on the tail, while random pointers shave roughly
   ``log2(1 + k / log2 n)`` hops off everything. It tracks the simulated
   trends (grows with skew and n, shrinks as random pointers catch up at
   large k) and is validated against simulation in the test suite at a
   loose tolerance — it is a model, not a measurement.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.util.errors import ConfigurationError
from repro.workload.zipf import ZipfDistribution

__all__ = [
    "lower_bound_cost",
    "core_only_upper_bound",
    "expected_uniform_hops",
    "predict_improvement",
]


def lower_bound_cost(frequencies: Mapping[int, float], core_neighbors: Iterable[int], k: int) -> float:
    """A rigorous lower bound on eq. 1 for any selection of ``k`` pointers.

    Every lookup pays the ``+1`` hop to a neighbor. A destination reaches
    distance 0 only if it *is* a pointer (core or auxiliary); at most ``k``
    non-core destinations can, and the best case zeroes the heaviest ones.
    Everything else pays at least one more hop.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    core = set(core_neighbors)
    total = sum(frequencies.values())
    non_core = sorted(
        (weight for peer, weight in frequencies.items() if peer not in core),
        reverse=True,
    )
    uncoverable = sum(non_core[k:])
    return total + uncoverable


def expected_uniform_hops(n: int) -> float:
    """Expected Chord lookup hops to a uniform destination, ``~ 0.5 log2 n``.

    The classic estimate for greedy clockwise routing with per-interval
    fingers (Stoica et al. 2001, Theorem IV.2's constant): each hop halves
    the remaining gap in expectation.
    """
    if n < 2:
        return 0.0
    return 0.5 * math.log2(n)


def core_only_upper_bound(frequencies: Mapping[int, float], bits: int) -> float:
    """Trivial upper bound on eq. 1: every lookup within ``bits`` hops."""
    return sum(frequencies.values()) * (1 + bits)


def predict_improvement(alpha: float, n: int, k: int) -> float:
    """Coarse closed-form prediction of the paper's plotted metric.

    Model: destinations follow zipf(``alpha``) over ``n`` peers.

    * Optimal: the ``k`` heaviest destinations answer in 1 hop (pointer at
      the destination); the tail pays the uniform-routing average.
    * Oblivious: ``k`` random pointers effectively enlarge the routing
      table from ``log2 n`` to ``log2 n + k`` entries, trimming about
      ``log2(1 + k / log2 n)`` hops for every destination.

    Returns the percentage reduction; clamped to ``[-100, 100]``.
    """
    if n < 4:
        raise ConfigurationError("model needs n >= 4")
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    zipf = ZipfDistribution(alpha, n)
    coverage = zipf.head_mass(k)
    base = 1.0 + expected_uniform_hops(n)
    log_table = max(math.log2(n), 1.0)
    oblivious = max(1.0, base - math.log2(1.0 + k / log_table))
    optimal = coverage * 1.0 + (1.0 - coverage) * oblivious
    reduction = 100.0 * (oblivious - optimal) / oblivious
    return max(-100.0, min(100.0, reduction))
