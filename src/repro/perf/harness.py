"""Timing harness: warmup + repeats + robust summary statistics.

Wall-clock timing in a shared environment is noisy; the harness therefore
runs ``warmup`` unmeasured calls (JIT-free Python still benefits: branch
caches, allocator pools, NumPy import side effects), then ``repeats``
measured calls, and summarizes with order statistics — the *median* is the
headline number (robust to one-off scheduler hiccups) and the *p95* bounds
the tail. Comparisons between runs should use medians.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.util.errors import ConfigurationError

__all__ = ["BenchTiming", "measure", "percentile"]


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of pre-sorted samples."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
    if not sorted_samples:
        return float("nan")
    rank = min(len(sorted_samples) - 1, max(0, math.ceil(q * len(sorted_samples)) - 1))
    return sorted_samples[rank]


@dataclass(frozen=True)
class BenchTiming:
    """Summary of one benchmark: per-call wall-clock seconds."""

    name: str
    repeats: int
    warmup: int
    min_s: float
    median_s: float
    mean_s: float
    p95_s: float
    max_s: float

    @property
    def ops_per_s(self) -> float:
        """Throughput implied by the median per-call time."""
        if self.median_s <= 0:
            return float("inf")
        return 1.0 / self.median_s

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "min_s": self.min_s,
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
            "ops_per_s": self.ops_per_s,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "BenchTiming":
        return cls(
            name=name,
            repeats=int(data["repeats"]),
            warmup=int(data.get("warmup", 0)),
            min_s=float(data["min_s"]),
            median_s=float(data["median_s"]),
            mean_s=float(data["mean_s"]),
            p95_s=float(data["p95_s"]),
            max_s=float(data["max_s"]),
        )


def measure(
    name: str,
    fn: Callable[[], object],
    *,
    repeats: int = 7,
    warmup: int = 2,
) -> BenchTiming:
    """Time ``fn`` with ``warmup`` discarded calls and ``repeats`` measured ones."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return BenchTiming(
        name=name,
        repeats=repeats,
        warmup=warmup,
        min_s=samples[0],
        median_s=percentile(samples, 0.5),
        mean_s=sum(samples) / len(samples),
        p95_s=percentile(samples, 0.95),
        max_s=samples[-1],
    )
