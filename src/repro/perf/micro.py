"""Kernel and routing-loop microbenchmarks.

Workloads are generated from fixed :class:`~repro.util.rng.
SeedSequenceRegistry` substreams so every bench run times the exact same
instances; only the hardware and the code under test vary between runs.

The kernel benches time the scalar reference against the NumPy kernel on
the *same* instance — their ratio is the speedup recorded in the bench
document (the acceptance bar for the vectorization work is >= 5x at
n=1024 on both overlays).
"""

from __future__ import annotations

from repro.chord.ring import ChordRing
from repro.core.cost import (
    chord_cost_scalar,
    chord_cost_vectorized,
    pastry_cost_scalar,
    pastry_cost_vectorized,
)
from repro.core.chord_selection import select_chord_fast
from repro.core.pastry_selection import select_pastry_greedy
from repro.core.types import SelectionProblem
from repro.pastry.network import PastryNetwork
from repro.perf.harness import BenchTiming, measure
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry

__all__ = ["kernel_instance", "micro_benchmarks", "KERNEL_PAIRS"]

_BENCH_SEED = 20_240_701

#: (speedup key, scalar bench name, vectorized bench name) triples the
#: runner turns into the document's ``speedups`` section.
KERNEL_PAIRS = (
    ("pastry_cost_n1024", "pastry_cost_scalar_n1024", "pastry_cost_vectorized_n1024"),
    ("chord_cost_n1024", "chord_cost_scalar_n1024", "chord_cost_vectorized_n1024"),
    ("pastry_cost_n4096", "pastry_cost_scalar_n4096", "pastry_cost_vectorized_n4096"),
    ("chord_cost_n4096", "chord_cost_scalar_n4096", "chord_cost_vectorized_n4096"),
)


def kernel_instance(n: int, bits: int = 32, pointer_count: int = 30):
    """A reproducible eq.-1 evaluation instance with ``n`` observed peers."""
    rng = SeedSequenceRegistry(_BENCH_SEED).stream(f"kernel-{n}-{bits}")
    space = IdSpace(bits)
    population = rng.sample(range(space.size), n + pointer_count + 1)
    peers = population[:n]
    source = population[n]
    core = population[n + 1 : n + 1 + pointer_count * 2 // 3]
    auxiliary = population[n + 1 + pointer_count * 2 // 3 : n + 1 + pointer_count]
    frequencies = {peer: rng.random() * 100.0 + 1.0 for peer in peers}
    return space, source, frequencies, core, auxiliary


def _selection_problem(n: int, bits: int, k: int) -> SelectionProblem:
    space, source, frequencies, core, _ = kernel_instance(n, bits, pointer_count=2 * k)
    return SelectionProblem(
        space=space,
        source=source,
        frequencies=frequencies,
        core_neighbors=frozenset(core),
        k=k,
    )


def _chord_lookup_loop(n: int, lookups: int, bits: int = 24):
    ring = ChordRing.build(n, space=IdSpace(bits), seed=_BENCH_SEED)
    rng = SeedSequenceRegistry(_BENCH_SEED).stream("chord-lookups")
    ids = ring.alive_ids()
    pairs = [(rng.choice(ids), rng.randrange(1 << bits)) for _ in range(lookups)]

    def run() -> None:
        for source, key in pairs:
            ring.lookup(source, key, record_access=False)

    return run


def _pastry_lookup_loop(n: int, lookups: int, bits: int = 24):
    network = PastryNetwork.build(n, space=IdSpace(bits), seed=_BENCH_SEED)
    rng = SeedSequenceRegistry(_BENCH_SEED).stream("pastry-lookups")
    ids = network.alive_ids()
    pairs = [(rng.choice(ids), rng.randrange(1 << bits)) for _ in range(lookups)]

    def run() -> None:
        for source, key in pairs:
            network.lookup(source, key, record_access=False)

    return run


def micro_benchmarks(smoke: bool = False) -> dict[str, BenchTiming]:
    """Run every microbenchmark; ``smoke`` trims repeats and drops the
    largest sizes (kernel entries at n=1024 are kept in both modes so CI
    smoke runs stay comparable to the committed full document)."""
    kernel_repeats = 5 if smoke else 15
    timings: dict[str, BenchTiming] = {}

    kernel_sizes = (1024,) if smoke else (1024, 4096)
    for n in kernel_sizes:
        space, source, frequencies, core, auxiliary = kernel_instance(n)
        timings[f"pastry_cost_scalar_n{n}"] = measure(
            f"pastry_cost_scalar_n{n}",
            lambda: pastry_cost_scalar(space, frequencies, core, auxiliary),
            repeats=kernel_repeats,
        )
        timings[f"pastry_cost_vectorized_n{n}"] = measure(
            f"pastry_cost_vectorized_n{n}",
            lambda: pastry_cost_vectorized(space, frequencies, core, auxiliary),
            repeats=kernel_repeats,
        )
        timings[f"chord_cost_scalar_n{n}"] = measure(
            f"chord_cost_scalar_n{n}",
            lambda: chord_cost_scalar(space, source, frequencies, core, auxiliary),
            repeats=kernel_repeats,
        )
        timings[f"chord_cost_vectorized_n{n}"] = measure(
            f"chord_cost_vectorized_n{n}",
            lambda: chord_cost_vectorized(space, source, frequencies, core, auxiliary),
            repeats=kernel_repeats,
        )

    solver_n = 256 if smoke else 512
    solver_repeats = 3 if smoke else 7
    chord_problem = _selection_problem(solver_n, bits=32, k=9)
    timings[f"select_chord_fast_n{solver_n}"] = measure(
        f"select_chord_fast_n{solver_n}",
        lambda: select_chord_fast(chord_problem),
        repeats=solver_repeats,
        warmup=1,
    )
    pastry_problem = _selection_problem(solver_n, bits=32, k=9)
    timings[f"select_pastry_greedy_n{solver_n}"] = measure(
        f"select_pastry_greedy_n{solver_n}",
        lambda: select_pastry_greedy(pastry_problem),
        repeats=solver_repeats,
        warmup=1,
    )

    loop_n = 128 if smoke else 256
    loop_lookups = 200 if smoke else 1000
    loop_repeats = 3 if smoke else 5
    timings[f"chord_lookup_loop_n{loop_n}"] = measure(
        f"chord_lookup_loop_n{loop_n}",
        _chord_lookup_loop(loop_n, loop_lookups),
        repeats=loop_repeats,
        warmup=1,
    )
    timings[f"pastry_lookup_loop_n{loop_n}"] = measure(
        f"pastry_lookup_loop_n{loop_n}",
        _pastry_lookup_loop(loop_n, loop_lookups),
        repeats=loop_repeats,
        warmup=1,
    )
    return timings
