"""Performance-regression harness.

Times the hot kernels (cost evaluation, selection solvers, routing loops)
and whole figure cells, and emits a ``BENCH_v1.json`` document so every
future change has a perf trajectory to compare against:

* :mod:`repro.perf.harness` — warmup + repeats timing with median/p95.
* :mod:`repro.perf.micro` — kernel and routing-loop microbenchmarks.
* :mod:`repro.perf.macro` — per-figure-cell timings and the serial-vs-
  parallel sweep identity check.
* :mod:`repro.perf.compare` — regression detection between two bench
  documents (used by CI).
* :mod:`repro.perf.runner` — assembles the full document; backs
  ``python -m repro bench``.
"""

from repro.perf.compare import Regression, find_regressions, load_bench
from repro.perf.harness import BenchTiming, measure
from repro.perf.runner import BENCH_SCHEMA, run_bench, write_bench

__all__ = [
    "BENCH_SCHEMA",
    "BenchTiming",
    "Regression",
    "find_regressions",
    "load_bench",
    "measure",
    "run_bench",
    "write_bench",
]
