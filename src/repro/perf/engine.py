"""Engine benches: columnar-vs-object equivalence, speedup, and memory.

Three sections back the ``repro bench`` gates for the columnar engine:

* ``engine_equivalence`` runs one stable comparison cell per overlay
  under both engines and asserts **dataclass equality** of the
  :class:`~repro.sim.metrics.ComparisonResult` — hop statistics, class
  counts, and float accumulators must match bit for bit, because the
  columnar runner folds exactly the same small-integer addends in the
  same order the object runner does.
* ``engine_speedup`` times the raw routing loops head to head on one
  frozen overlay per kind: the object router iterated over a fixed
  (source, key) stream versus one :func:`batch_route_chord` /
  :func:`batch_route_pastry` call on a prebuilt snapshot (fed the
  batch-native array form of the same stream). Repeats are
  *interleaved* — each repeat times one object pass then one batch
  pass — and the gated number is the **median of the paired
  routing-only ratios**, which stays meaningful when the host machine
  drifts between repeats (both sides of every pair see the same
  conditions). Snapshot construction is amortized across every
  policy/ranking pass that reuses it, so it is reported separately and
  folded into ``end_to_end`` instead.
* ``engine_memory`` builds a synthetic ring directly in columnar form at
  reporting scale and gates on **bytes per node**, keeping the columnar
  representation honest about its footprint (ids + CSR tables + the
  keyed routing arrays described in :mod:`repro.engine.columnar`).

Every section degrades to ``{"skipped": ...}`` when numpy is missing so
the bench document stays well-formed on minimal installs.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import replace

from repro.engine.dispatch import numpy_or_none
from repro.perf.harness import measure
from repro.sim.runner import ExperimentConfig, run_stable

__all__ = [
    "ENGINE_MEMORY_THRESHOLD",
    "ENGINE_SPEEDUP_THRESHOLD",
    "engine_equivalence",
    "engine_memory",
    "engine_speedup",
]

_BENCH_SEED = 20_240_701  # same seed family as repro.perf.micro

#: Acceptance bar: batched routing must beat the object routers by >= 10x
#: at full-bench scale (n=4096 nodes, 4096 in-flight lookups).
ENGINE_SPEEDUP_THRESHOLD = 10.0

#: Acceptance bar: the columnar chord image (keyed arrays included) must
#: stay under 1 KiB per node at reporting scale (n=10^5).
ENGINE_MEMORY_THRESHOLD = 1024.0


def _equivalence_cell(overlay: str, smoke: bool) -> ExperimentConfig:
    if overlay == "chord":
        if smoke:
            return ExperimentConfig(
                overlay="chord", n=192, k=7, alpha=1.2, bits=20, queries=1500, seed=0
            )
        return ExperimentConfig(
            overlay="chord", n=1024, k=10, alpha=1.2, bits=32, queries=5000, seed=0
        )
    if smoke:
        return ExperimentConfig(
            overlay="pastry", n=128, k=7, alpha=1.2, bits=20, queries=1500, seed=0
        )
    return ExperimentConfig(
        overlay="pastry", n=512, k=9, alpha=1.2, bits=32, queries=5000, seed=0
    )


def engine_equivalence(smoke: bool = False) -> dict:
    """Run one cell per overlay under both engines; results must be equal."""
    if numpy_or_none() is None:
        return {"skipped": "numpy unavailable"}
    cells = {}
    for overlay in ("chord", "pastry"):
        base = _equivalence_cell(overlay, smoke)
        results = {}
        timings = {}
        for engine in ("objects", "columnar"):
            config = replace(base, engine=engine)
            started = time.perf_counter()
            results[engine] = run_stable(config)
            timings[engine] = time.perf_counter() - started
        cells[overlay] = {
            "n": base.n,
            "queries": base.queries,
            "objects_s": round(timings["objects"], 4),
            "columnar_s": round(timings["columnar"], 4),
            "identical": results["objects"] == results["columnar"],
        }
    return {
        "cells": cells,
        "identical": all(cell["identical"] for cell in cells.values()),
    }


def _speedup_workload(overlay_name: str, smoke: bool):
    """One frozen overlay with auxiliaries plus its lookup stream."""
    from repro.chord.ring import ChordRing
    from repro.pastry.network import PastryNetwork

    n = 512 if smoke else 4096
    lookups = 1024 if smoke else 4096
    aux_nodes = 64 if smoke else 512
    if overlay_name == "chord":
        overlay = ChordRing.build(n, seed=_BENCH_SEED)
    else:
        overlay = PastryNetwork.build(n, seed=_BENCH_SEED)
    rng = random.Random(_BENCH_SEED)
    alive = overlay.alive_ids()
    for node_id in rng.sample(alive, aux_nodes):
        auxiliary = set(rng.sample(alive, 8))
        overlay.node(node_id).set_auxiliary(auxiliary - {node_id})
    sources = [rng.choice(alive) for _ in range(lookups)]
    keys = [rng.randrange(overlay.space.size) for _ in range(lookups)]
    return overlay, sources, keys


def engine_speedup(smoke: bool = False) -> dict:
    """Object routers vs batched columnar routing on frozen overlays."""
    if numpy_or_none() is None:
        return {"skipped": "numpy unavailable"}
    from repro.engine.columnar import snapshot_chord, snapshot_pastry
    from repro.engine.router import batch_route_chord, batch_route_pastry

    np = numpy_or_none()
    repeats = 3 if smoke else 7
    overlays = {}
    for overlay_name in ("chord", "pastry"):
        overlay, sources, keys = _speedup_workload(overlay_name, smoke)
        pairs = list(zip(sources, keys))
        source_arr = np.asarray(sources, dtype=np.int64)
        key_arr = np.asarray(keys, dtype=np.int64)

        def object_pass():
            total = 0
            for source, key in pairs:
                total += overlay.lookup(source, key, record_access=False).hops
            return total

        if overlay_name == "chord":
            snapshot_fn = lambda: snapshot_chord(overlay)  # noqa: E731
            snapshot = snapshot_fn()
            batch_fn = lambda: batch_route_chord(snapshot, source_arr, key_arr)  # noqa: E731
        else:
            snapshot_fn = lambda: snapshot_pastry(overlay)  # noqa: E731
            snapshot = snapshot_fn()
            batch_fn = lambda: batch_route_pastry(snapshot, source_arr, key_arr)  # noqa: E731
        # Sanity: both paths must agree on total hops before we time them.
        assert int(batch_fn().hops.sum()) == object_pass()

        object_times = []
        batch_times = []
        ratios = []
        for _ in range(repeats):
            started = time.perf_counter()
            object_pass()
            object_s = time.perf_counter() - started
            started = time.perf_counter()
            batch_fn()
            batch_s = time.perf_counter() - started
            object_times.append(object_s)
            batch_times.append(batch_s)
            ratios.append(object_s / batch_s)
        snapshot_t = measure(f"{overlay_name}-snapshot", snapshot_fn, repeats=repeats, warmup=0)
        object_s = statistics.median(object_times)
        batch_s = statistics.median(batch_times)
        routing = statistics.median(ratios)
        overlays[overlay_name] = {
            "n": len(overlay.alive_ids()),
            "lookups": len(pairs),
            "objects_s": round(object_s, 5),
            "batch_s": round(batch_s, 5),
            "snapshot_s": round(snapshot_t.median_s, 5),
            "routing_speedup": round(routing, 2),
            "end_to_end_speedup": round(
                object_s / (batch_s + snapshot_t.median_s), 2
            ),
        }
    worst = min(entry["routing_speedup"] for entry in overlays.values())
    # The >= 10x bar is calibrated at full scale; smoke cells are too
    # small for the batch step costs to amortize, so smoke only checks
    # that batching wins at all.
    threshold = 2.0 if smoke else ENGINE_SPEEDUP_THRESHOLD
    return {
        "overlays": overlays,
        "worst_routing_speedup": worst,
        "threshold": threshold,
        "passed": worst >= threshold,
    }


def engine_memory(smoke: bool = False) -> dict:
    """Columnar footprint per node on a synthetic reporting-scale ring."""
    if numpy_or_none() is None:
        return {"skipped": "numpy unavailable"}
    from repro.engine.columnar import build_direct_chord

    n = 10_000 if smoke else 100_000
    snapshot = build_direct_chord(n, bits=32, seed=_BENCH_SEED)
    bytes_per_node = snapshot.bytes_per_node
    return {
        "n": n,
        "bits": snapshot.bits,
        "total_bytes": int(snapshot.nbytes),
        "bytes_per_node": round(bytes_per_node, 1),
        "threshold": ENGINE_MEMORY_THRESHOLD,
        "passed": bytes_per_node <= ENGINE_MEMORY_THRESHOLD,
    }
