"""Macro timings: whole figure cells and the parallel-sweep identity check.

Macro entries time one full ``run_stable``/``run_churn`` comparison cell —
overlay construction, frequency seeding, two auxiliary-selection passes
over every node, and the full query stream under both policies — i.e. the
unit of work the report generator fans out. Each cell is timed three
times and summarized by its median: single-sample medians made the CI
regression gate compare noise against noise, and three repeats are the
cheapest sample the order statistics are meaningful on.

The ``parallel`` section runs the same small sweep serially and with
worker processes, records both wall times, and asserts the rows are
**equal** — the bench document thereby carries the proof that the
process fan-out is bit-identical to the serial path.
"""

from __future__ import annotations

import time

from repro.experiments.sweep import sweep
from repro.perf.harness import BenchTiming, measure
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable

__all__ = ["macro_benchmarks", "parallel_identity_check"]


def _figure5_stable_cell(smoke: bool) -> ExperimentConfig:
    """The Figure 5 stable cell: paper-scale n=1024 in full mode."""
    if smoke:
        return ExperimentConfig(
            overlay="chord", n=192, k=7, alpha=1.2, bits=20, queries=1500, num_rankings=5, seed=0
        )
    return ExperimentConfig(
        overlay="chord", n=1024, k=10, alpha=1.2, bits=32, queries=5000, num_rankings=5, seed=0
    )


def _figure3_pastry_cell(smoke: bool) -> ExperimentConfig:
    if smoke:
        return ExperimentConfig(
            overlay="pastry", n=128, k=7, alpha=1.2, bits=20, queries=1500, num_rankings=1, seed=0
        )
    return ExperimentConfig(
        overlay="pastry", n=512, k=9, alpha=1.2, bits=32, queries=5000, num_rankings=1, seed=0
    )


def _figure5_churn_cell(smoke: bool) -> ChurnConfig:
    return ChurnConfig(
        overlay="chord",
        n=64 if smoke else 128,
        k=6 if smoke else 7,
        alpha=1.2,
        bits=20,
        num_rankings=5,
        seed=0,
        duration=120.0 if smoke else 300.0,
        warmup=30.0 if smoke else 75.0,
    )


def macro_benchmarks(smoke: bool = False) -> dict[str, BenchTiming]:
    """Time one stable cell per overlay plus one churn cell."""
    mode = "smoke" if smoke else "full"
    cells = {
        f"figure5_stable_cell[{mode}]": (run_stable, _figure5_stable_cell(smoke)),
        f"figure3_pastry_cell[{mode}]": (run_stable, _figure3_pastry_cell(smoke)),
        f"figure5_churn_cell[{mode}]": (run_churn, _figure5_churn_cell(smoke)),
    }
    timings: dict[str, BenchTiming] = {}
    for name, (runner, config) in cells.items():
        timings[name] = measure(name, lambda: runner(config), repeats=3, warmup=0)
    return timings


def parallel_identity_check(jobs: int, smoke: bool = False) -> dict:
    """Run one sweep serially and with ``jobs`` workers; time both and
    verify the outputs are identical (exact float equality, not approx)."""
    base = ExperimentConfig(
        overlay="chord",
        n=48 if smoke else 96,
        bits=16 if smoke else 20,
        queries=400 if smoke else 1500,
        seed=3,
    )
    values = [0.8, 1.0, 1.2, 1.4]
    started = time.perf_counter()
    serial_rows = sweep(base, "alpha", values, jobs=1)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel_rows = sweep(base, "alpha", values, jobs=jobs)
    parallel_s = time.perf_counter() - started
    return {
        "jobs": jobs,
        "sweep_cells": len(values),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "identical": serial_rows == parallel_rows,
    }
