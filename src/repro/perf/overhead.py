"""Tracing-overhead benchmark: the disabled path must be (nearly) free.

The observability plane's contract is *zero cost when disabled*: routing
with ``trace=NullRecorder()`` must run at the same speed as routing with
no recorder at all, because the router normalizes disabled recorders to
``None`` at entry. This bench certifies the claim the CI gate enforces —
the NullRecorder path costs < 2% on the PR 1 routing-loop workloads.

Methodology — a 2% bar needs care on shared hardware:

* Comparing against a *committed* baseline file would measure the
  machine difference, not the code difference, so both variants are
  measured in the same process on the same overlay and the same
  (source, key) stream (fault-free lookups with ``record_access=False``
  mutate nothing, so sharing the overlay is exact).
* The dominant noise is **multiplicative CPU-speed drift** over
  ~10–100 ms windows (steal time, frequency scaling), which neither
  minima nor whole-pass pairing survive. The lookup stream is therefore
  split into sub-millisecond **chunks**, and each chunk is timed under
  both variants back to back (alternating order), so every base/null
  pair shares one speed regime and the drift divides out of the
  per-trial total ratio.
* GC is paused during measurement, several independent trials are run,
  and the **median trial ratio** per overlay is the gated number.
"""

from __future__ import annotations

import gc
import time

from repro.chord.ring import ChordRing
from repro.obs.recorder import NullRecorder
from repro.pastry.network import PastryNetwork
from repro.perf.harness import percentile
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry

__all__ = ["OVERHEAD_THRESHOLD", "overhead_benchmark"]

_BENCH_SEED = 20_240_701  # same workloads as repro.perf.micro

#: Acceptance bar: NullRecorder lookups may cost at most 2% extra.
OVERHEAD_THRESHOLD = 1.02


def _build_workload(overlay_name: str, n: int, lookups: int, bits: int = 24):
    """One overlay plus its fixed (source, key) lookup stream."""
    if overlay_name == "chord":
        overlay = ChordRing.build(n, space=IdSpace(bits), seed=_BENCH_SEED)
        stream = "chord-lookups"
    else:
        overlay = PastryNetwork.build(n, space=IdSpace(bits), seed=_BENCH_SEED)
        stream = "pastry-lookups"
    rng = SeedSequenceRegistry(_BENCH_SEED).stream(stream)
    ids = overlay.alive_ids()
    pairs = [(rng.choice(ids), rng.randrange(1 << bits)) for _ in range(lookups)]
    return overlay, pairs


def _trial_ratio(overlay, pairs, chunk: int, rounds: int) -> float:
    """One trial: null-time / base-time over chunk-interleaved passes."""
    null = NullRecorder()
    chunks = [pairs[index : index + chunk] for index in range(0, len(pairs), chunk)]
    base_total = 0.0
    null_total = 0.0
    for round_index in range(rounds):
        for chunk_index, piece in enumerate(chunks):
            # Alternate which variant leads per (round, chunk) so ordering
            # effects cancel over the trial.
            null_first = (round_index + chunk_index) % 2 == 1
            for variant in ((1, 0) if null_first else (0, 1)):
                started = time.perf_counter()
                if variant == 0:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False)
                else:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False, trace=null)
                elapsed = time.perf_counter() - started
                if variant == 0:
                    base_total += elapsed
                else:
                    null_total += elapsed
    return null_total / base_total


def _measure_overlay(
    overlay_name: str,
    n: int,
    lookups: int,
    trials: int,
    chunk: int,
    rounds: int,
) -> dict:
    overlay, pairs = _build_workload(overlay_name, n, lookups)
    # Warm both code paths (allocator pools, branch caches) off the clock.
    null = NullRecorder()
    for source, key in pairs:
        overlay.lookup(source, key, record_access=False)
        overlay.lookup(source, key, record_access=False, trace=null)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios = [_trial_ratio(overlay, pairs, chunk, rounds) for _ in range(trials)]
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    return {
        "trials": trials,
        "chunk": chunk,
        "rounds": rounds,
        "ratios": [round(ratio, 5) for ratio in ratios],
        "min_ratio": ratios[0],
        "median_ratio": percentile(ratios, 0.5),
        "max_ratio": ratios[-1],
    }


def overhead_benchmark(smoke: bool = False) -> dict:
    """Measure the NullRecorder overhead on both routing loops.

    Returns the ``obs_overhead`` section of the bench document: per-
    overlay trial summaries, the worst median trial ratio, the
    threshold, and the pass/fail verdict the CLI gate enforces.
    """
    n = 128 if smoke else 256
    lookups = 300 if smoke else 600
    chunk = 5
    # Chord lookups are ~5x cheaper than Pastry's, so a chord trial sees
    # ~5x less work and proportionally more timing noise; give it more
    # rounds and trials (still a fraction of the pastry wall time).
    plans = {
        "chord": {"trials": 15, "chunk": chunk, "rounds": 12},
        "pastry": {"trials": 11, "chunk": chunk, "rounds": 8},
    }
    results = {name: _measure_overlay(name, n, lookups, **plan) for name, plan in plans.items()}
    # Residual noise is per-*run* drift (layout, steal-time regime), so a
    # single failing measurement is weak evidence. Re-measure any overlay
    # over the bar up to twice and keep the cleanest run: a true
    # regression fails every pass, a noise spike almost never does.
    for name, entry in results.items():
        for _retry in range(2):
            if results[name]["median_ratio"] < OVERHEAD_THRESHOLD:
                break
            retry_entry = _measure_overlay(name, n, lookups, **plans[name])
            if retry_entry["median_ratio"] < results[name]["median_ratio"]:
                retry_entry["remeasured"] = True
                results[name] = retry_entry
            else:
                results[name]["remeasured"] = True
    worst = max(entry["median_ratio"] for entry in results.values())
    return {
        "n": n,
        "lookups": lookups,
        "overlays": results,
        "worst_ratio": worst,
        "threshold": OVERHEAD_THRESHOLD,
        "passed": worst < OVERHEAD_THRESHOLD,
    }
