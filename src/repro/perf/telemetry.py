"""Telemetry-overhead benchmark: the disabled path must be (nearly) free.

The telemetry plane inherits the observability contract: routing and
maintenance with a *disabled* :class:`~repro.telemetry.runtime.
RoundTelemetry` must cost the same as running with no telemetry at all,
because every instrumented layer normalizes a disabled runtime to
``None`` at entry (runner, overlays, churn process, fault wiring). This
bench certifies the claim the CI gate enforces — the disabled-telemetry
path costs < 2% on the routing-loop workloads.

Methodology is identical to :mod:`repro.perf.overhead` (chunk-interleaved
paired timing, GC off, median trial ratio, one re-measure on failure);
see that module for why each piece exists. The only difference is the
variant under test: lookups carrying ``trace=disabled.recorder`` on an
overlay with the disabled runtime attached, versus bare lookups.

:func:`disabled_telemetry` is a deliberate seam: the mutation test in
``tests/telemetry`` monkeypatches it to return an *enabled* runtime and
asserts this gate then fails — proving a leaky disabled path cannot slip
past CI silently.
"""

from __future__ import annotations

import gc
import time

from repro.perf.harness import percentile
from repro.perf.overhead import OVERHEAD_THRESHOLD, _build_workload
from repro.telemetry.runtime import RoundTelemetry

__all__ = ["TELEMETRY_THRESHOLD", "disabled_telemetry", "telemetry_overhead_benchmark"]

#: Acceptance bar: disabled telemetry may cost at most 2% extra.
TELEMETRY_THRESHOLD = OVERHEAD_THRESHOLD


def disabled_telemetry() -> RoundTelemetry:
    """The disabled runtime the bench measures (monkeypatch seam for the
    leaky-registry mutation test)."""
    return RoundTelemetry.disabled()


def _trial_ratio(overlay, pairs, chunk: int, rounds: int) -> float:
    """One trial: disabled-telemetry-time / base-time, chunk-interleaved."""
    telemetry = disabled_telemetry()
    recorder = telemetry.recorder if telemetry.enabled else None
    chunks = [pairs[index : index + chunk] for index in range(0, len(pairs), chunk)]
    base_total = 0.0
    tel_total = 0.0
    for round_index in range(rounds):
        for chunk_index, piece in enumerate(chunks):
            tel_first = (round_index + chunk_index) % 2 == 1
            for variant in ((1, 0) if tel_first else (0, 1)):
                if variant == 1:
                    overlay.attach_telemetry(telemetry)
                started = time.perf_counter()
                if variant == 0:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False)
                else:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False, trace=recorder)
                elapsed = time.perf_counter() - started
                if variant == 1:
                    overlay.attach_telemetry(None)
                    tel_total += elapsed
                else:
                    base_total += elapsed
    return tel_total / base_total


def _measure_overlay(
    overlay_name: str,
    n: int,
    lookups: int,
    trials: int,
    chunk: int,
    rounds: int,
) -> dict:
    overlay, pairs = _build_workload(overlay_name, n, lookups)
    telemetry = disabled_telemetry()
    recorder = telemetry.recorder if telemetry.enabled else None
    # Warm both code paths off the clock.
    for source, key in pairs:
        overlay.lookup(source, key, record_access=False)
        overlay.lookup(source, key, record_access=False, trace=recorder)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios = [_trial_ratio(overlay, pairs, chunk, rounds) for _ in range(trials)]
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    return {
        "trials": trials,
        "chunk": chunk,
        "rounds": rounds,
        "ratios": [round(ratio, 5) for ratio in ratios],
        "min_ratio": ratios[0],
        "median_ratio": percentile(ratios, 0.5),
        "max_ratio": ratios[-1],
    }


def telemetry_overhead_benchmark(smoke: bool = False) -> dict:
    """Measure the disabled-telemetry overhead on both routing loops.

    Returns the ``telemetry_overhead`` section of the bench document —
    same shape and gate semantics as ``obs_overhead``.
    """
    n = 128 if smoke else 256
    lookups = 300 if smoke else 600
    chunk = 5
    plans = {
        "chord": {"trials": 15, "chunk": chunk, "rounds": 12},
        "pastry": {"trials": 9, "chunk": chunk, "rounds": 6},
    }
    results = {name: _measure_overlay(name, n, lookups, **plan) for name, plan in plans.items()}
    for name, entry in results.items():
        if entry["median_ratio"] >= TELEMETRY_THRESHOLD:
            retry_entry = _measure_overlay(name, n, lookups, **plans[name])
            if retry_entry["median_ratio"] < entry["median_ratio"]:
                retry_entry["remeasured"] = True
                results[name] = retry_entry
            else:
                entry["remeasured"] = True
    worst = max(entry["median_ratio"] for entry in results.values())
    return {
        "n": n,
        "lookups": lookups,
        "overlays": results,
        "worst_ratio": worst,
        "threshold": TELEMETRY_THRESHOLD,
        "passed": worst < TELEMETRY_THRESHOLD,
    }
