"""Attribution-recorder overhead benchmark: disabled must be (nearly) free.

The cache attribution plane rides the same ``TraceRecorder`` protocol as
the tracing plane: routers normalize ``trace=AttributionRecorder(...,
enabled=False)`` to ``None`` at entry, so a disabled recorder must cost
the same as passing no recorder at all. This bench certifies that claim
with the same methodology as :mod:`repro.perf.overhead` (chunk-
interleaved timing so multiplicative CPU-speed drift divides out of each
trial ratio, GC paused, median trial ratio gated) — see that module's
docstring for why a 2% bar needs this care on shared hardware.

The gated number feeds the ``cachestats_overhead`` section of the
BENCH_v1 document and the ``repro bench`` CLI gate.
"""

from __future__ import annotations

import gc
import time

from repro.obs.attribution import AttributionRecorder
from repro.perf.harness import percentile
from repro.perf.overhead import OVERHEAD_THRESHOLD, _build_workload

__all__ = ["CACHESTATS_OVERHEAD_THRESHOLD", "cachestats_overhead_benchmark"]

#: Same acceptance bar as the tracing plane: < 2% when disabled.
CACHESTATS_OVERHEAD_THRESHOLD = OVERHEAD_THRESHOLD


def _trial_ratio(overlay, pairs, chunk: int, rounds: int, recorder) -> float:
    """One trial: disabled-recorder time / bare time, chunk-interleaved."""
    chunks = [pairs[index : index + chunk] for index in range(0, len(pairs), chunk)]
    base_total = 0.0
    traced_total = 0.0
    for round_index in range(rounds):
        for chunk_index, piece in enumerate(chunks):
            traced_first = (round_index + chunk_index) % 2 == 1
            for variant in ((1, 0) if traced_first else (0, 1)):
                started = time.perf_counter()
                if variant == 0:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False)
                else:
                    for source, key in piece:
                        overlay.lookup(source, key, record_access=False, trace=recorder)
                elapsed = time.perf_counter() - started
                if variant == 0:
                    base_total += elapsed
                else:
                    traced_total += elapsed
    return traced_total / base_total


def _measure_overlay(
    overlay_name: str,
    n: int,
    lookups: int,
    trials: int,
    chunk: int,
    rounds: int,
) -> dict:
    overlay, pairs = _build_workload(overlay_name, n, lookups)
    recorder = AttributionRecorder(
        overlay_name, overlay, attribute=False, enabled=False
    )
    # Warm both code paths off the clock.
    for source, key in pairs:
        overlay.lookup(source, key, record_access=False)
        overlay.lookup(source, key, record_access=False, trace=recorder)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios = [
            _trial_ratio(overlay, pairs, chunk, rounds, recorder)
            for _ in range(trials)
        ]
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    return {
        "trials": trials,
        "chunk": chunk,
        "rounds": rounds,
        "ratios": [round(ratio, 5) for ratio in ratios],
        "min_ratio": ratios[0],
        "median_ratio": percentile(ratios, 0.5),
        "max_ratio": ratios[-1],
    }


def cachestats_overhead_benchmark(smoke: bool = False) -> dict:
    """Measure the disabled ``AttributionRecorder`` overhead.

    Returns the ``cachestats_overhead`` section of the bench document:
    per-overlay trial summaries, the worst median trial ratio, the
    threshold, and the pass/fail verdict the CLI gate enforces.
    """
    n = 128 if smoke else 256
    lookups = 300 if smoke else 600
    chunk = 5
    plans = {
        "chord": {"trials": 15, "chunk": chunk, "rounds": 12},
        "pastry": {"trials": 11, "chunk": chunk, "rounds": 8},
    }
    results = {
        name: _measure_overlay(name, n, lookups, **plan)
        for name, plan in plans.items()
    }
    # Same noise policy as repro.perf.overhead: a single over-bar
    # measurement is weak evidence, so re-measure up to twice and keep
    # the cleanest run.
    for name in results:
        for _retry in range(2):
            if results[name]["median_ratio"] < CACHESTATS_OVERHEAD_THRESHOLD:
                break
            retry_entry = _measure_overlay(name, n, lookups, **plans[name])
            if retry_entry["median_ratio"] < results[name]["median_ratio"]:
                retry_entry["remeasured"] = True
                results[name] = retry_entry
            else:
                results[name]["remeasured"] = True
    worst = max(entry["median_ratio"] for entry in results.values())
    return {
        "n": n,
        "lookups": lookups,
        "overlays": results,
        "worst_ratio": worst,
        "threshold": CACHESTATS_OVERHEAD_THRESHOLD,
        "passed": worst < CACHESTATS_OVERHEAD_THRESHOLD,
    }
