"""Regression detection between two bench documents.

CI runs a smoke bench and compares its microbenchmark medians against the
committed ``BENCH_v1.json`` baseline: any kernel whose median grows by
more than ``threshold``x fails the build. Only ``micro`` entries present
in *both* documents are compared — renamed or newly added benchmarks are
never spurious failures — and macro timings are reported but not gated
(whole-cell times are too machine-sensitive for a hard threshold).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Mapping

from repro.util.errors import ConfigurationError

__all__ = ["Regression", "find_regressions", "load_bench"]


def load_bench(path: str | pathlib.Path) -> dict:
    """Load a bench document, validating the schema marker."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"bench baseline not found: {path}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"bench baseline {path} is not valid JSON: {exc}")
    schema = document.get("schema")
    if schema != "BENCH_v1":
        raise ConfigurationError(f"unsupported bench schema {schema!r} in {path} (expected 'BENCH_v1')")
    return document


@dataclass(frozen=True)
class Regression:
    """One benchmark whose median slowed past the threshold."""

    name: str
    baseline_median_s: float
    current_median_s: float

    @property
    def ratio(self) -> float:
        if self.baseline_median_s <= 0:
            return float("inf")
        return self.current_median_s / self.baseline_median_s

    def describe(self) -> str:
        return (
            f"{self.name}: {self.current_median_s * 1e3:.3f} ms vs baseline "
            f"{self.baseline_median_s * 1e3:.3f} ms ({self.ratio:.2f}x)"
        )


def find_regressions(
    baseline: Mapping,
    current: Mapping,
    threshold: float = 2.0,
) -> list[Regression]:
    """Microbenchmarks in both documents whose median grew > ``threshold``x."""
    if threshold <= 1.0:
        raise ConfigurationError(f"threshold must be > 1.0, got {threshold}")
    baseline_micro = baseline.get("micro", {})
    current_micro = current.get("micro", {})
    regressions = []
    for name in sorted(set(baseline_micro) & set(current_micro)):
        base_median = float(baseline_micro[name]["median_s"])
        cur_median = float(current_micro[name]["median_s"])
        if base_median > 0 and cur_median / base_median > threshold:
            regressions.append(
                Regression(name=name, baseline_median_s=base_median, current_median_s=cur_median)
            )
    regressions.sort(key=lambda r: r.ratio, reverse=True)
    return regressions
