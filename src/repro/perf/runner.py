"""Assemble the full BENCH_v1 document; backs ``python -m repro bench``.

Document layout::

    {
      "schema": "BENCH_v1",
      "mode": "full" | "smoke",
      "python": "3.x.y", "platform": "...", "cpu_count": N,
      "numpy": "x.y.z" | null,
      "manifest": {... MANIFEST_v1 run provenance ...},
      "micro":    {name: {repeats, warmup, min_s, median_s, ...}},
      "macro":    {name: {...}},                # one-shot figure cells
      "speedups": {kernel: scalar_median / vectorized_median},
      "parallel": {jobs, sweep_cells, serial_s, parallel_s, identical},
      "obs_overhead": {overlays, worst_ratio, threshold, passed},
      "telemetry_overhead": {overlays, worst_ratio, threshold, passed},
      "cachestats_overhead": {overlays, worst_ratio, threshold, passed},
      "engine_equivalence": {cells, identical},
      "engine_speedup": {overlays, worst_routing_speedup, threshold, passed},
      "engine_memory": {n, bytes_per_node, threshold, passed}
    }

``speedups`` is derived from paired micro entries (see
:data:`repro.perf.micro.KERNEL_PAIRS`); the vectorization acceptance bar
is >= 5x on both cost kernels at n=1024. ``parallel.identical`` must be
``true`` — it certifies that worker-process fan-out reproduces the serial
sweep bit for bit. ``obs_overhead.passed`` must be ``true`` — it
certifies that routing with a disabled trace recorder costs < 2% over
routing with no recorder (see :mod:`repro.perf.overhead`).
``telemetry_overhead.passed`` must be ``true`` — the same bar for the
disabled telemetry runtime (see :mod:`repro.perf.telemetry`).
``cachestats_overhead.passed`` must be ``true`` — the same bar again for
a disabled :class:`~repro.obs.attribution.AttributionRecorder` (see
:mod:`repro.perf.cachestats`).
The ``engine_*`` sections certify the columnar simulation engine: cross-
engine results identical, batched routing >= 10x the object routers at
full scale, and <= 1 KiB of columnar image per node (see
:mod:`repro.perf.engine`). Each may instead carry ``{"skipped": ...}``
when numpy is absent.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys

from repro.obs.manifest import build_manifest
from repro.perf.cachestats import cachestats_overhead_benchmark
from repro.perf.engine import engine_equivalence, engine_memory, engine_speedup
from repro.perf.macro import macro_benchmarks, parallel_identity_check
from repro.perf.micro import KERNEL_PAIRS, micro_benchmarks
from repro.perf.overhead import overhead_benchmark
from repro.perf.telemetry import telemetry_overhead_benchmark
from repro.util.parallel import resolve_jobs

__all__ = ["BENCH_SCHEMA", "run_bench", "write_bench"]

BENCH_SCHEMA = "BENCH_v1"


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


def run_bench(smoke: bool = False, jobs: int | None = None) -> dict:
    """Run the full bench matrix and return the BENCH_v1 document."""
    resolved_jobs = resolve_jobs(jobs)
    micro = micro_benchmarks(smoke=smoke)
    macro = macro_benchmarks(smoke=smoke)
    speedups = {}
    for key, scalar_name, vector_name in KERNEL_PAIRS:
        if scalar_name in micro and vector_name in micro:
            speedups[key] = round(micro[scalar_name].median_s / micro[vector_name].median_s, 2)
    return {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": _numpy_version(),
        "manifest": build_manifest(extra={"mode": "smoke" if smoke else "full"}),
        "micro": {name: timing.to_dict() for name, timing in micro.items()},
        "macro": {name: timing.to_dict() for name, timing in macro.items()},
        "speedups": speedups,
        # At least two workers so the check exercises a real process pool
        # even on single-CPU boxes.
        "parallel": parallel_identity_check(max(2, resolved_jobs), smoke=smoke),
        "obs_overhead": overhead_benchmark(smoke=smoke),
        "telemetry_overhead": telemetry_overhead_benchmark(smoke=smoke),
        "cachestats_overhead": cachestats_overhead_benchmark(smoke=smoke),
        "engine_equivalence": engine_equivalence(smoke=smoke),
        "engine_speedup": engine_speedup(smoke=smoke),
        "engine_memory": engine_memory(smoke=smoke),
    }


def write_bench(document: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Write the document as stable, diff-friendly JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def print_summary(document: dict, stream=None) -> None:
    """Human-readable one-screen summary of a bench document."""
    if stream is None:
        stream = sys.stdout
    print(f"bench mode={document['mode']} python={document['python']} "
          f"cpus={document['cpu_count']} numpy={document['numpy']}", file=stream)
    print("\nmicro (median per call):", file=stream)
    for name, entry in document["micro"].items():
        print(f"  {name:<34} {entry['median_s'] * 1e3:10.3f} ms", file=stream)
    if document["macro"]:
        print("\nmacro (single run):", file=stream)
        for name, entry in document["macro"].items():
            print(f"  {name:<34} {entry['median_s']:10.2f} s", file=stream)
    if document["speedups"]:
        print("\nvectorized speedups (scalar / vectorized):", file=stream)
        for name, ratio in document["speedups"].items():
            print(f"  {name:<34} {ratio:10.1f}x", file=stream)
    parallel = document["parallel"]
    print(
        f"\nparallel identity: jobs={parallel['jobs']} cells={parallel['sweep_cells']} "
        f"serial={parallel['serial_s']:.2f}s parallel={parallel['parallel_s']:.2f}s "
        f"identical={parallel['identical']}",
        file=stream,
    )
    for key, label in (
        ("obs_overhead", "trace overhead (NullRecorder / untraced)"),
        ("telemetry_overhead", "telemetry overhead (disabled runtime / bare)"),
        ("cachestats_overhead", "cachestats overhead (disabled attribution / untraced)"),
    ):
        overhead = document.get(key)
        if overhead:
            print(
                f"{label}: worst median "
                f"{overhead['worst_ratio']:.4f} (threshold {overhead['threshold']:.2f}) "
                f"passed={overhead['passed']}",
                file=stream,
            )
            for name, entry in overhead["overlays"].items():
                print(
                    f"  {name:<10} median={entry['median_ratio']:.4f} "
                    f"min={entry['min_ratio']:.4f} max={entry['max_ratio']:.4f} "
                    f"trials={entry['trials']}",
                    file=stream,
                )
    equivalence = document.get("engine_equivalence")
    if equivalence and "skipped" not in equivalence:
        print(f"\nengine equivalence: identical={equivalence['identical']}", file=stream)
        for name, cell in equivalence["cells"].items():
            print(
                f"  {name:<10} n={cell['n']:<6} objects={cell['objects_s']:.2f}s "
                f"columnar={cell['columnar_s']:.2f}s identical={cell['identical']}",
                file=stream,
            )
    speedup = document.get("engine_speedup")
    if speedup and "skipped" not in speedup:
        print(
            f"engine speedup: worst routing {speedup['worst_routing_speedup']:.1f}x "
            f"(threshold {speedup['threshold']:.1f}x) passed={speedup['passed']}",
            file=stream,
        )
        for name, entry in speedup["overlays"].items():
            print(
                f"  {name:<10} objects={entry['objects_s'] * 1e3:.1f}ms "
                f"batch={entry['batch_s'] * 1e3:.1f}ms "
                f"snapshot={entry['snapshot_s'] * 1e3:.1f}ms "
                f"routing={entry['routing_speedup']:.1f}x "
                f"end-to-end={entry['end_to_end_speedup']:.1f}x",
                file=stream,
            )
    memory = document.get("engine_memory")
    if memory and "skipped" not in memory:
        print(
            f"engine memory: n={memory['n']} "
            f"{memory['bytes_per_node']:.1f} B/node "
            f"(threshold {memory['threshold']:.0f}) passed={memory['passed']}",
            file=stream,
        )
