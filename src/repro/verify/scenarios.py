"""Deterministic scenarios: seeded generation and the invariant-checking engine.

A :class:`Scenario` is a small, JSON-round-trippable recipe — overlay
kind, topology (n, bits, k), Zipf workload shape, a message-loss rate and
an ordered list of steps — whose entire execution is a pure function of
its ``seed``. The engine builds the overlay, seeds the paper's converged
destination frequencies, then executes the steps while evaluating every
applicable invariant from :mod:`repro.verify.invariants`:

* after **every** step: table coherence, live-list bookkeeping and the
  responsibility differential oracle;
* after **stabilize** steps (and on the freshly built overlay): successor
  -list / leaf-set ground-truth and symmetry checks;
* after **recompute** steps: the selection invariants (DP ≡ fast/greedy,
  nesting, monotonicity in k, QoS bounds) on a seeded sample of nodes;
* during **lookups** steps: per-hop progress, termination-at-responsible,
  retry accounting, trace-vs-HopStatistics reconciliation, and the cache
  attribution plane's conservation law (an
  :class:`~repro.obs.attribution.AttributionRecorder` rides the same
  lookups through a tee);
* after every *snapshot-safe* step (all live pointers live, so the
  columnar image is defined): engine snapshot coherence, plus — on clean
  steps — batched columnar lookups replayed through the same routing
  progress/termination oracles.

The engine tracks a ``clean`` flag — true when the overlay is fully
stabilized and no message loss is configured — under which the strongest
form of the termination invariant applies: *every* lookup must succeed.
Crash bursts and rejoins clear the flag; a stabilize step restores it
(stale pointers may survive, but the redundancy invariants guarantee they
cannot strand a lookup).

All randomness flows through named substreams of one
:class:`~repro.util.rng.SeedSequenceRegistry`, so a scenario re-runs
bit-identically — the property the shrinker and the replay CLI rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.chord.ring import ChordRing
from repro.chord.ring import optimal_policy as chord_optimal
from repro.core import budget as budget_mod
from repro.core.types import SelectionProblem
from repro.faults.plane import FaultPlane
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.kademlia.network import KademliaNetwork
from repro.kademlia.network import optimal_policy as kademlia_optimal
from repro.obs.recorder import LookupTracer
from repro.pastry.network import PastryNetwork
from repro.pastry.network import optimal_policy as pastry_optimal
from repro.sim.metrics import HopStatistics
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry, substream_seed
from repro.engine.dispatch import numpy_or_none
from repro.verify.invariants import (
    Violation,
    check_budget_feasibility,
    check_cachestats_conservation,
    check_chord_state,
    check_chord_successors,
    check_engine_coherence,
    check_engine_routing,
    check_kademlia_buckets,
    check_kademlia_state,
    check_pastry_leaf_sets,
    check_pastry_state,
    check_responsibility,
    check_retry_bounds,
    check_routing_progress,
    check_routing_termination,
    check_selection_equivalence,
    check_selection_monotone,
    check_selection_nesting,
    check_selection_qos,
    check_trace_reconciliation,
)

__all__ = [
    "OVERLAYS",
    "STEP_OPS",
    "Scenario",
    "ScenarioReport",
    "generate_scenario",
    "generate_scenarios",
    "run_scenario",
]

OVERLAYS = ("chord", "pastry", "kademlia")

#: Step operations: ``(op, arg)`` pairs. ``arg`` is the lookup count,
#: burst size, rejoin count or corruption count; zero for the arg-less
#: maintenance ops (``allocate`` = global budget allocation + install).
STEP_OPS = (
    "lookups",
    "crash_burst",
    "rejoin",
    "stabilize",
    "recompute",
    "allocate",
    "corrupt",
)

#: Crash bursts never reduce the population below this (leaf sets and
#: successor lists need a handful of peers to mean anything).
_MIN_ALIVE = 4

#: Selection invariants are evaluated on this many sampled nodes per
#: recompute step (they re-solve the selection problem several times).
_SELECTION_SAMPLE = 2

#: Responsibility-oracle keys probed after every step.
_ORACLE_KEYS = 4

#: Batched lookups replayed through the columnar engine per clean step.
_ENGINE_LOOKUPS = 8


@dataclass(frozen=True)
class Scenario:
    """One reproducible verification scenario (JSON-round-trippable)."""

    overlay: str
    seed: int
    n: int
    bits: int
    k: int
    alpha: float
    loss_rate: float
    steps: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "steps", tuple((str(op), int(arg)) for op, arg in self.steps)
        )
        if self.overlay not in OVERLAYS:
            raise ConfigurationError(f"unknown overlay {self.overlay!r}")
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 nodes, got {self.n}")
        if self.bits < 3 or self.n > 2**self.bits:
            raise ConfigurationError(
                f"cannot place {self.n} nodes in a {self.bits}-bit space"
            )
        if self.k < 0:
            raise ConfigurationError(f"k must be non-negative, got {self.k}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if not self.steps:
            raise ConfigurationError("scenario needs at least one step")
        for op, arg in self.steps:
            if op not in STEP_OPS:
                raise ConfigurationError(f"unknown step op {op!r}")
            if arg < 0:
                raise ConfigurationError(f"step {op!r} has negative arg {arg}")

    def to_dict(self) -> dict:
        return {
            "overlay": self.overlay,
            "seed": self.seed,
            "n": self.n,
            "bits": self.bits,
            "k": self.k,
            "alpha": self.alpha,
            "loss_rate": self.loss_rate,
            "steps": [[op, arg] for op, arg in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        return cls(
            overlay=payload["overlay"],
            seed=payload["seed"],
            n=payload["n"],
            bits=payload["bits"],
            k=payload["k"],
            alpha=payload["alpha"],
            loss_rate=payload["loss_rate"],
            steps=tuple((op, arg) for op, arg in payload["steps"]),
        )


@dataclass
class ScenarioReport:
    """The outcome of running one scenario through the engine."""

    scenario: Scenario
    violations: list[Violation] = field(default_factory=list)
    #: Invariant name -> number of times it was evaluated.
    checks: dict[str, int] = field(default_factory=dict)
    lookups: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "passed": self.passed,
            "lookups": self.lookups,
            "checks": dict(sorted(self.checks.items())),
            "violations": [violation.to_dict() for violation in self.violations],
        }


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_scenario(
    master_seed: int, index: int, overlay: str | None = None
) -> Scenario:
    """The ``index``-th scenario of the seeded search.

    Each scenario draws from its own named substream of ``master_seed``,
    so scenario ``i`` is identical no matter how many others run around
    it. Overlays alternate by index unless pinned. Every scenario ends
    with a stabilize/recompute/lookups tail so the strongest clean-state
    invariants are exercised at least once per scenario.
    """
    rng = random.Random(substream_seed(master_seed, f"scenario-{index}"))
    chosen = overlay if overlay is not None else OVERLAYS[index % len(OVERLAYS)]
    if chosen not in OVERLAYS:
        raise ConfigurationError(f"unknown overlay {chosen!r}")
    n = rng.randrange(8, 41)
    bits = rng.choice((12, 14, 16))
    k = rng.randrange(1, 6)
    alpha = rng.choice((0.8, 1.2, 1.6))
    loss_rate = rng.choice((0.0, 0.0, 0.0, 0.05, 0.15))
    steps: list[tuple[str, int]] = [
        ("recompute", 0),
        ("lookups", rng.randrange(10, 31)),
    ]
    for __ in range(rng.randrange(2, 6)):
        roll = rng.random()
        if roll < 0.35:
            steps.append(("lookups", rng.randrange(8, 25)))
        elif roll < 0.50:
            steps.append(("crash_burst", rng.randrange(1, 4)))
        elif roll < 0.62:
            steps.append(("rejoin", rng.randrange(1, 3)))
        elif roll < 0.77:
            steps.append(("stabilize", 0))
        elif roll < 0.87:
            steps.append(("recompute", 0))
        elif roll < 0.93:
            steps.append(("allocate", 0))
        else:
            steps.append(("corrupt", rng.randrange(1, 3)))
    steps += [
        ("stabilize", 0),
        ("recompute", 0),
        ("allocate", 0),
        ("lookups", rng.randrange(10, 21)),
    ]
    return Scenario(
        overlay=chosen,
        seed=rng.randrange(2**31),
        n=n,
        bits=bits,
        k=k,
        alpha=alpha,
        loss_rate=loss_rate,
        steps=tuple(steps),
    )


def generate_scenarios(
    count: int, master_seed: int, overlay: str | None = None
) -> list[Scenario]:
    return [generate_scenario(master_seed, index, overlay) for index in range(count)]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _Engine:
    """Executes one scenario, evaluating invariants as it goes."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.kind = scenario.overlay
        self.registry = SeedSequenceRegistry(scenario.seed)
        self.space = IdSpace(scenario.bits)
        overlay_seed = self.registry.stream("overlay").randrange(2**31)
        if self.kind == "chord":
            self.overlay = ChordRing.build(
                scenario.n, space=self.space, seed=overlay_seed
            )
            self.policy = chord_optimal
        elif self.kind == "kademlia":
            self.overlay = KademliaNetwork.build(
                scenario.n, space=self.space, seed=overlay_seed
            )
            self.policy = kademlia_optimal
        else:
            self.overlay = PastryNetwork.build(
                scenario.n, space=self.space, seed=overlay_seed
            )
            self.policy = pastry_optimal
        self._seed_workload()
        self.plane = FaultPlane(
            FaultSchedule(loss_rate=scenario.loss_rate),
            self.registry.fresh("fault-plane"),
        )
        self.faults_arg = self.plane if scenario.loss_rate > 0.0 else None
        self.retry = (
            RetryPolicy.robust() if scenario.loss_rate > 0.0 else RetryPolicy.single()
        )
        self.policy_rng = self.registry.stream("policy")
        self.churn_rng = self.registry.stream("churn")
        self.sample_rng = self.registry.stream("selection-sample")
        self.key_rng = self.registry.stream("oracle-keys")
        self.engine_rng = self.registry.stream("engine-keys")
        self.limit = 4 * self.space.bits
        self.clean = scenario.loss_rate == 0.0
        self.violations: list[Violation] = []
        self.checks: dict[str, int] = {}
        self.lookups_run = 0

    def _seed_workload(self) -> None:
        """Converged Zipf destination frequencies, as the stable-mode
        experiments seed them (one shared ranking)."""
        from repro.workload.items import ItemCatalog, PopularityModel
        from repro.workload.queries import QueryGenerator

        catalog = ItemCatalog(
            self.space,
            4 * self.scenario.n,
            seed=self.registry.stream("items").randrange(2**31),
        )
        self.popularity = PopularityModel(
            catalog,
            self.scenario.alpha,
            num_rankings=1,
            seed=self.registry.stream("rankings").randrange(2**31),
        )
        self.assignment = self.popularity.assign_rankings(self.overlay.alive_ids())
        destinations = self.popularity.node_frequencies(0, self.overlay.responsible)
        for node_id in self.overlay.alive_ids():
            weights = dict(destinations)
            weights.pop(node_id, None)
            self.overlay.seed_frequencies(node_id, weights)
        self.generator = QueryGenerator(
            self.popularity, self.assignment, self.registry.fresh("queries")
        )

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        # The freshly built overlay is stabilized: the strongest state
        # invariants must already hold before any step runs.
        self._state_checks(step=-1, stabilized=True)
        for index, (op, arg) in enumerate(self.scenario.steps):
            getattr(self, "_op_" + op)(arg, index)
            self._state_checks(index, stabilized=(op == "stabilize"))
        return ScenarioReport(
            scenario=self.scenario,
            violations=self.violations,
            checks=self.checks,
            lookups=self.lookups_run,
        )

    def _record(self, name: str, step: int, messages: list[str]) -> None:
        self.checks[name] = self.checks.get(name, 0) + 1
        for message in messages:
            self.violations.append(Violation(name, step, message))

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _lookup(self, source: int, key: int, tracer):
        # Pastry keeps its default proximity mode; the signature is shared.
        return self.overlay.lookup(
            source, key, retry=self.retry, faults=self.faults_arg, trace=tracer
        )

    def _op_lookups(self, count: int, step: int) -> None:
        from repro.obs.attribution import AttributionRecorder, TeeRecorder

        tracer = LookupTracer()  # sample=None keeps every trace
        # The attribution recorder rides the same TraceRecorder hook via a
        # tee — both observe the identical hop events of every lookup.
        attribution = AttributionRecorder(self.kind, self.overlay)
        tee = TeeRecorder(tracer, attribution)
        stats = HopStatistics()
        results = []
        for query in self.generator.stream(count, self.overlay.alive_ids):
            result = self._lookup(query.source, query.item, tee)
            stats.record(result)
            results.append(result)
        self.lookups_run += count
        alive = self.overlay.alive_ids()
        for trace in tracer.traces:
            self._record(
                "routing.progress",
                step,
                check_routing_progress(self.kind, self.space, trace),
            )
            self._record(
                "routing.termination",
                step,
                check_routing_termination(
                    self.kind, self.space, alive, trace, self.clean
                ),
            )
            self._record(
                "routing.retry_bounds",
                step,
                check_retry_bounds(trace, self.retry.max_attempts, self.limit),
            )
        self._record(
            "trace.reconciliation",
            step,
            check_trace_reconciliation(tracer.counters, stats, results),
        )
        self._record(
            "cachestats.conservation",
            step,
            check_cachestats_conservation(attribution),
        )

    def _op_crash_burst(self, size: int, step: int) -> None:
        alive = self.overlay.alive_ids()
        budget = min(size, max(0, len(alive) - _MIN_ALIVE))
        if budget <= 0:
            return
        for victim in sorted(self.churn_rng.sample(alive, budget)):
            self.overlay.crash(victim)
        self.clean = False

    def _op_rejoin(self, count: int, step: int) -> None:
        dead = sorted(
            node_id
            for node_id, node in self.overlay.nodes.items()
            if not node.alive
        )
        for node_id in dead[:count]:
            self.overlay.rejoin(node_id)
        if dead[:count]:
            self.clean = False

    def _op_stabilize(self, arg: int, step: int) -> None:
        self.overlay.stabilize_all()
        if self.scenario.loss_rate == 0.0:
            self.clean = True

    def _op_recompute(self, arg: int, step: int) -> None:
        self.overlay.recompute_all_auxiliary(
            self.scenario.k, self.policy, self.policy_rng, frequency_limit=64
        )
        alive = self.overlay.alive_ids()
        sampled = self.sample_rng.sample(alive, min(_SELECTION_SAMPLE, len(alive)))
        for node_id in sorted(sampled):
            problem = self._selection_problem(node_id)
            if problem is None:
                continue
            self._record(
                "selection.equivalence",
                step,
                check_selection_equivalence(problem, self.kind),
            )
            self._record(
                "selection.monotone_k",
                step,
                check_selection_monotone(problem, self.kind),
            )
            self._record(
                "selection.qos", step, check_selection_qos(problem, self.kind)
            )
            if self.kind in ("pastry", "kademlia"):
                self._record(
                    "selection.nesting",
                    step,
                    check_selection_nesting(problem, self.kind),
                )

    def _op_allocate(self, arg: int, step: int) -> None:
        """Global marginal-gain allocation of ``k * alive`` pointers,
        checked for feasibility and installed.

        Calls flow through the :mod:`repro.core.budget` module attributes
        so the mutation tests can plant a corrupted allocator and watch
        ``budget.feasibility`` fire.
        """
        problems = budget_mod.overlay_problems(self.kind, self.overlay, 64)
        if not problems:
            return
        curves = budget_mod.curves_for_problems(problems, self.kind)
        total = self.scenario.k * len(problems)
        allocation = budget_mod.allocate_greedy(curves, total)
        self._record(
            "budget.feasibility",
            step,
            check_budget_feasibility(allocation, problems, self.kind),
        )
        budget_mod.install_allocation(
            self.overlay, allocation, self.policy, self.policy_rng, 64
        )

    def _op_corrupt(self, count: int, step: int) -> None:
        for __ in range(count):
            self.plane.corrupt_pointer(self.overlay)
        # Planted pointers are wrong-but-live or dead: the redundancy
        # invariants say routing must absorb them (evict + fail over), so
        # the clean-success obligation intentionally stays in force.

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _selection_problem(self, node_id: int) -> SelectionProblem | None:
        """The exact problem ``recompute_auxiliary`` just solved at
        ``node_id`` (None when the node has no observed peers, e.g. a
        freshly rejoined node with a wiped tracker)."""
        node = self.overlay.node(node_id)
        frequencies = node.frequency_snapshot(64)
        if not frequencies:
            return None
        if self.kind == "chord":
            core = frozenset(node.core | set(node.successors))
        elif self.kind == "kademlia":
            core = frozenset(node.core)
        else:
            core = frozenset(node.core | node.leaves)
        return SelectionProblem(
            space=self.space,
            source=node_id,
            frequencies=frequencies,
            core_neighbors=core,
            k=self.scenario.k,
        )

    def _state_checks(self, step: int, stabilized: bool) -> None:
        if self.kind == "chord":
            self._record("state.table_coherence", step, check_chord_state(self.overlay))
            if stabilized:
                self._record(
                    "state.successor_lists",
                    step,
                    check_chord_successors(self.overlay),
                )
        elif self.kind == "kademlia":
            self._record(
                "kademlia.table_coherence", step, check_kademlia_state(self.overlay)
            )
            if stabilized:
                self._record(
                    "kademlia.table_coherence",
                    step,
                    check_kademlia_buckets(self.overlay),
                )
        else:
            self._record(
                "state.table_coherence", step, check_pastry_state(self.overlay)
            )
            if stabilized:
                self._record(
                    "state.leaf_sets", step, check_pastry_leaf_sets(self.overlay)
                )
        keys = [self.key_rng.randrange(self.space.size) for __ in range(_ORACLE_KEYS)]
        self._record(
            "state.responsibility",
            step,
            check_responsibility(self.kind, self.overlay, keys),
        )
        self._engine_checks(step)

    def _snapshot_safe(self) -> bool:
        """Columnar snapshots are defined on fully-live overlays: every
        pointer any live node holds must itself be alive (a dead entry
        has no position on the snapshot's id axis)."""
        alive = set(self.overlay.alive_ids())
        for node_id in alive:
            node = self.overlay.node(node_id)
            if self.kind == "chord":
                referenced = node.table.entries()
            else:
                referenced = node.neighbor_ids()
            if not alive.issuperset(referenced):
                return False
        return True

    def _engine_checks(self, step: int) -> None:
        """Replay the step's overlay through the columnar engine.

        Coherence runs on every snapshot-safe step; the routing
        invariants additionally need the ``clean`` flag, because the
        batch routers have no retry machinery — termination-at-
        responsible is only an obligation when the object routers would
        accept it without timeouts.
        """
        if numpy_or_none() is None:
            return
        if self.kind == "kademlia":
            return  # the columnar engine implements chord and pastry only
        if not self._snapshot_safe():
            return
        self._record(
            "engine.table_coherence",
            step,
            check_engine_coherence(self.kind, self.overlay),
        )
        if not self.clean:
            return
        alive = self.overlay.alive_ids()
        sources = [self.engine_rng.choice(alive) for __ in range(_ENGINE_LOOKUPS)]
        keys = [
            self.engine_rng.randrange(self.space.size)
            for __ in range(_ENGINE_LOOKUPS)
        ]
        progress, termination = check_engine_routing(
            self.kind, self.overlay, sources, keys, clean=True
        )
        self._record("engine.routing_progress", step, progress)
        self._record("engine.routing_termination", step, termination)


def run_scenario(scenario: Scenario) -> ScenarioReport:
    """Execute one scenario and return its invariant report.

    Pure function of the scenario: same scenario, same report — the
    contract the shrinker and the bit-identity acceptance test rely on.
    """
    return _Engine(scenario).run()


def with_steps(scenario: Scenario, steps) -> Scenario:
    """A copy of ``scenario`` with a different step list (shrinker hook)."""
    return replace(scenario, steps=tuple(steps))
