"""The invariant registry: machine-checked properties with differential oracles.

Every invariant is a named, documented property of one layer of the
reproduction. Check functions are deliberately *independent
re-derivations* — linear scans instead of bisect, brute force instead of
DP, per-hop recomputation of the paper's distance metrics — so that a bug
in the optimized code path cannot hide inside the checker that is supposed
to catch it.

Naming convention: ``<scope>.<property>`` with scopes

* ``selection`` — the paper's auxiliary-selection algorithms (Section IV):
  DP ≡ greedy/fast equivalence, the nesting property of Lemma 4.1, cost
  monotonicity in the budget k, QoS delay-bound satisfaction.
* ``routing`` — per-lookup path properties: every delivered hop makes
  strict progress under the overlay's distance metric (eq. 6 for Chord,
  prefix/numeric progress for Pastry), lookups terminate at the
  responsible node, retries stay within policy bounds.
* ``state`` — overlay bookkeeping: forwarding tables cohere with the
  core/successor/leaf/auxiliary sets that feed them, successor lists and
  leaf sets match their ground-truth definitions after stabilization,
  responsibility agrees with a linear-scan oracle.
* ``trace`` — observability accounting: per-hop trace events reconcile
  exactly with :class:`~repro.sim.metrics.HopStatistics` counters.
* ``engine`` — the columnar engine (:mod:`repro.engine`): snapshots are
  faithful images of the object overlay (id axis, CSR rows, dense
  gap-sorted hop tables), and batched frontier lookups replayed on a
  snapshot satisfy the same per-hop progress and
  termination-at-oracle-responsible properties as object lookups —
  checked through the *same* independent oracles, with the batch result
  adapted into the trace shape they consume.

Selection solvers are always called through their *module* attribute
(``chord_selection.select_chord_fast`` etc.), so tests can monkeypatch a
deliberately broken solver and watch the corresponding invariant fire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import chord_selection, cost, kademlia_selection, pastry_selection
from repro.core.types import SelectionProblem
from repro.pastry.routing import circular_distance
from repro.util.errors import InfeasibleConstraintError

__all__ = [
    "Invariant",
    "REGISTRY",
    "Violation",
    "check_budget_feasibility",
    "check_cachestats_conservation",
    "check_chord_state",
    "check_chord_successors",
    "check_engine_coherence",
    "check_engine_routing",
    "check_kademlia_buckets",
    "check_kademlia_state",
    "check_pastry_leaf_sets",
    "check_pastry_state",
    "check_responsibility",
    "check_retry_bounds",
    "check_routing_progress",
    "check_routing_termination",
    "check_selection_equivalence",
    "check_selection_monotone",
    "check_selection_nesting",
    "check_selection_qos",
    "check_trace_reconciliation",
    "invariants_for",
]

#: Cost comparisons are float sums of Zipf weights; two algorithms that
#: agree mathematically may differ by accumulated rounding.
_REL_TOL = 1e-9
_ABS_TOL = 1e-9

#: Instance size below which the brute-force differential oracle runs.
_BRUTE_MAX_CANDIDATES = 10
_BRUTE_MAX_K = 3


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


@dataclass(frozen=True)
class Violation:
    """One invariant failure observed at one scenario step."""

    invariant: str
    step: int
    message: str

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "step": self.step,
            "message": self.message,
        }


@dataclass(frozen=True)
class Invariant:
    """A registered machine-checked property."""

    name: str
    scope: str  # "selection" | "routing" | "state" | "trace" | "engine" | "kademlia"
    overlays: tuple[str, ...]
    description: str


REGISTRY: dict[str, Invariant] = {
    invariant.name: invariant
    for invariant in (
        Invariant(
            "selection.equivalence",
            "selection",
            ("chord", "pastry", "kademlia"),
            "The O(n^2 k) DP, the fast/greedy algorithm, an independent cost "
            "re-evaluation, and (on tiny instances) brute force all agree on "
            "the optimal selection cost (eq. 7-10 / Section IV).",
        ),
        Invariant(
            "selection.nesting",
            "selection",
            ("pastry", "kademlia"),
            "Greedy prefix-metric selections nest: the budget-(j-1) "
            "selection is a subset of the budget-j selection, at DP-optimal "
            "cost for every budget (the nesting property P, Lemma 4.1) — on "
            "Pastry and on Kademlia, whose XOR classes are prefix lengths.",
        ),
        Invariant(
            "selection.monotone_k",
            "selection",
            ("chord", "pastry", "kademlia"),
            "The optimal expected lookup cost is non-increasing in the "
            "auxiliary budget k (more pointers can only help).",
        ),
        Invariant(
            "selection.qos",
            "selection",
            ("chord", "pastry", "kademlia"),
            "Under feasible per-peer delay bounds the QoS-aware DP returns a "
            "selection that satisfies every bound, at a cost no better than "
            "the unconstrained optimum (Section IV-C).",
        ),
        Invariant(
            "routing.progress",
            "routing",
            ("chord", "pastry", "kademlia"),
            "Every delivered hop makes strict progress: on Chord the "
            "clockwise gap to the key strictly shrinks; on Pastry each hop "
            "lengthens the shared prefix with the key, or strictly reduces "
            "circular distance, or breaks an exact distance tie downward; on "
            "Kademlia the XOR distance to the key strictly shrinks.",
        ),
        Invariant(
            "routing.termination",
            "routing",
            ("chord", "pastry", "kademlia"),
            "Successful lookups terminate exactly at the responsible node "
            "(linear-scan oracle); failed lookups report no destination; on "
            "a fully stabilized overlay with no message loss every lookup "
            "succeeds.",
        ),
        Invariant(
            "routing.retry_bounds",
            "routing",
            ("chord", "pastry", "kademlia"),
            "Per-target delivery attempts never exceed the retry policy's "
            "max_attempts; per-event and per-lookup hop/timeout accounting "
            "is exact; hops + timeouts stays within the routing hop limit.",
        ),
        Invariant(
            "state.table_coherence",
            "state",
            ("chord", "pastry"),
            "Forwarding structures are derived views: the Chord ring table "
            "equals core ∪ successors ∪ auxiliary and the Pastry cell union "
            "equals core ∪ leaves ∪ auxiliary (never containing self), and "
            "the overlay's sorted live-id list matches per-node alive flags.",
        ),
        Invariant(
            "state.successor_lists",
            "state",
            ("chord",),
            "After stabilization every live node's successor list equals the "
            "ground truth (the next successor_list_size live nodes clockwise) "
            "and contains no crashed entries — even after crash bursts.",
        ),
        Invariant(
            "state.leaf_sets",
            "state",
            ("pastry",),
            "After stabilization every live node's leaf set equals the "
            "ground-truth numerically-nearest set, is symmetric (y in "
            "leaves(x) implies x in leaves(y)), and contains no crashed "
            "entries — even after joins and leaves.",
        ),
        Invariant(
            "state.responsibility",
            "state",
            ("chord", "pastry", "kademlia"),
            "The overlay's responsible() agrees with a linear scan over all "
            "live nodes: clockwise predecessor on Chord (eq. 6 metric), "
            "numerically closest with lower-id tie-break on Pastry, XOR "
            "minimizer on Kademlia (injective — no tie-break).",
        ),
        Invariant(
            "kademlia.table_coherence",
            "kademlia",
            ("kademlia",),
            "The Kademlia per-class index is a faithful view of core ∪ "
            "auxiliary (never containing self, every entry filed under its "
            "true common-prefix-length class), the live-id list matches "
            "per-node alive flags, and after stabilization every node's "
            "core equals a ground-truth k-bucket rebuild over the live set.",
        ),
        Invariant(
            "trace.reconciliation",
            "trace",
            ("chord", "pastry", "kademlia"),
            "Per-hop trace events reconcile exactly with HopStatistics: "
            "lookup/success/failure counts, delivered-hop totals (all "
            "lookups vs successful-only), and timeout totals all match.",
        ),
        Invariant(
            "cachestats.conservation",
            "cachestats",
            ("chord", "pastry", "kademlia"),
            "The attribution plane's accounting is self-consistent: hits <= "
            "uses and stale_uses <= uses for every concrete pointer, the "
            "(node, class) aggregates equal an independent re-sum of the "
            "per-pointer buckets, and the hop-savings credits satisfy the "
            "conservation law sum(credits) == oblivious hops - residual - "
            "observed hops, both per lookup and in total.",
        ),
        Invariant(
            "budget.feasibility",
            "budget",
            ("chord", "pastry", "kademlia"),
            "A global budget allocation is feasible and honest: per-node "
            "quotas are within candidate capacity, they sum to exactly the "
            "spendable budget min(K, total capacity), and every per-node "
            "reported cost matches a fresh local selection re-run at that "
            "node's quota (DESIGN.md §12).",
        ),
        Invariant(
            "engine.table_coherence",
            "engine",
            ("chord", "pastry"),
            "The columnar snapshot is a faithful image of the object "
            "overlay: the sorted live-id axis, every per-node CSR row with "
            "its pointer classes, the dense gap-sorted Chord hop rows "
            "(prefix = entries ascending by clockwise gap, pads duplicating "
            "the max-gap entry), and the Pastry leaf rows and geometry all "
            "match a linear re-derivation from the object nodes.",
        ),
        Invariant(
            "engine.routing_progress",
            "engine",
            ("chord", "pastry"),
            "Batched frontier lookups on a columnar snapshot make strict "
            "per-hop progress under the overlay's distance metric — the "
            "object-router progress oracle evaluated on recorded batch "
            "paths (fully-live overlays, where snapshots are defined).",
        ),
        Invariant(
            "engine.routing_termination",
            "engine",
            ("chord", "pastry"),
            "Batched frontier lookups terminate at the linear-scan-oracle "
            "responsible node, report hop counts consistent with their "
            "recorded paths, and never fail on a clean snapshot.",
        ),
    )
}


def invariants_for(scope: str, overlay: str) -> list[str]:
    """Registered invariant names applicable to ``(scope, overlay)``."""
    return sorted(
        name
        for name, invariant in REGISTRY.items()
        if invariant.scope == scope and overlay in invariant.overlays
    )


# ----------------------------------------------------------------------
# selection.*
# ----------------------------------------------------------------------
def _solve_pair(problem: SelectionProblem, overlay: str):
    """(dp_result, fast_result, fast_label) via module attributes so the
    mutation tests can monkeypatch a broken solver into the checks."""
    if overlay == "chord":
        return (
            chord_selection.select_chord_dp(problem),
            chord_selection.select_chord_fast(problem),
            "fast",
        )
    if overlay == "kademlia":
        return (
            kademlia_selection.select_kademlia_dp(problem),
            kademlia_selection.select_kademlia_greedy(problem),
            "greedy",
        )
    return (
        pastry_selection.select_pastry_dp(problem),
        pastry_selection.select_pastry_greedy(problem),
        "greedy",
    )


def check_selection_equivalence(problem: SelectionProblem, overlay: str) -> list[str]:
    """DP ≡ fast/greedy ≡ re-evaluated cost (≡ brute force when tiny)."""
    messages: list[str] = []
    dp, fast, fast_label = _solve_pair(problem, overlay)
    if not _close(dp.cost, fast.cost):
        messages.append(
            f"dp cost {dp.cost!r} != {fast_label} cost {fast.cost!r} "
            f"at node {problem.source}"
        )
    candidates = set(problem.candidates)
    for result, label in ((dp, "dp"), (fast, fast_label)):
        recomputed = cost.evaluate(problem, result.auxiliary, overlay)
        if not _close(recomputed, result.cost):
            messages.append(
                f"{label} reported cost {result.cost!r} but re-evaluation "
                f"gives {recomputed!r} at node {problem.source}"
            )
        if len(result.auxiliary) > problem.k:
            messages.append(
                f"{label} selected {len(result.auxiliary)} auxiliaries "
                f"with budget k={problem.k} at node {problem.source}"
            )
        if not set(result.auxiliary) <= candidates:
            rogue = sorted(set(result.auxiliary) - candidates)
            messages.append(
                f"{label} selected non-candidate peers {rogue} "
                f"at node {problem.source}"
            )
    if len(candidates) <= _BRUTE_MAX_CANDIDATES and problem.k <= _BRUTE_MAX_K:
        brute = cost.brute_force_optimal(problem, overlay)
        if not _close(dp.cost, brute.cost):
            messages.append(
                f"dp cost {dp.cost!r} != brute-force optimum {brute.cost!r} "
                f"at node {problem.source}"
            )
    return messages


def check_selection_nesting(
    problem: SelectionProblem, overlay: str = "pastry"
) -> list[str]:
    """Lemma 4.1: greedy selections nest across budgets at DP cost.

    Applies to both prefix-metric overlays — Pastry directly, Kademlia
    because its XOR distance classes *are* common prefix lengths."""
    messages: list[str] = []
    previous: set[int] = set()
    for budget in range(problem.k + 1):
        sub = problem.with_k(budget)
        if overlay == "kademlia":
            greedy = kademlia_selection.select_kademlia_greedy(sub)
            dp = kademlia_selection.select_kademlia_dp(sub)
        else:
            greedy = pastry_selection.select_pastry_greedy(sub)
            dp = pastry_selection.select_pastry_dp(sub)
        if not _close(greedy.cost, dp.cost):
            messages.append(
                f"greedy cost {greedy.cost!r} != dp cost {dp.cost!r} "
                f"at budget {budget} (node {problem.source})"
            )
        selected = set(greedy.auxiliary)
        if not previous <= selected:
            dropped = sorted(previous - selected)
            messages.append(
                f"nesting broken at budget {budget}: peers {dropped} from "
                f"budget {budget - 1} were dropped (node {problem.source})"
            )
        previous = selected
    return messages


def check_selection_monotone(problem: SelectionProblem, overlay: str) -> list[str]:
    """Optimal cost never increases when the budget k grows."""
    messages: list[str] = []
    if overlay == "chord":
        select = chord_selection.select_chord_fast
    elif overlay == "kademlia":
        select = kademlia_selection.select_kademlia_greedy
    else:
        select = pastry_selection.select_pastry_greedy
    last: float | None = None
    for budget in range(problem.k + 1):
        result = select(problem.with_k(budget))
        if last is not None and result.cost > last and not _close(result.cost, last):
            messages.append(
                f"cost rose from {last!r} at budget {budget - 1} to "
                f"{result.cost!r} at budget {budget} (node {problem.source})"
            )
        last = result.cost
    return messages


def _peer_distance(problem: SelectionProblem, overlay: str, peer: int, pointers) -> int:
    if overlay == "chord":
        return cost.chord_peer_distance(problem.space, problem.source, peer, pointers)
    if overlay == "kademlia":
        return kademlia_selection.kademlia_peer_distance(
            problem.space, peer, pointers
        )
    return cost.pastry_peer_distance(problem.space, peer, pointers)


def check_selection_qos(problem: SelectionProblem, overlay: str) -> list[str]:
    """Feasible-by-construction delay bounds must be honored by the DP."""
    if not problem.candidates:
        return []
    messages: list[str] = []
    base, __, __ = _solve_pair(problem, overlay)
    base_pointers = set(problem.core_neighbors) | set(base.auxiliary)
    # Bind the two hottest peers to the latency the unconstrained optimum
    # already achieves for them — feasible by construction.
    peers = sorted(
        problem.candidates, key=lambda p: (-problem.frequencies[p], p)
    )[:2]
    bounds = {
        peer: 1 + _peer_distance(problem, overlay, peer, base_pointers)
        for peer in peers
    }
    bounded_problem = SelectionProblem(
        space=problem.space,
        source=problem.source,
        frequencies=problem.frequencies,
        core_neighbors=problem.core_neighbors,
        k=problem.k,
        delay_bounds=bounds,
    )
    try:
        if overlay == "chord":
            bounded = chord_selection.select_chord_dp(bounded_problem)
        elif overlay == "kademlia":
            bounded = kademlia_selection.select_kademlia_dp(bounded_problem)
        else:
            bounded = pastry_selection.select_pastry_dp(bounded_problem)
    except InfeasibleConstraintError:
        return [
            f"bounds {sorted(bounds.items())} derived from a feasible "
            f"selection were reported infeasible at node {problem.source}"
        ]
    result_pointers = set(problem.core_neighbors) | set(bounded.auxiliary)
    for peer, bound in sorted(bounds.items()):
        achieved = 1 + _peer_distance(problem, overlay, peer, result_pointers)
        if achieved > bound:
            messages.append(
                f"peer {peer} bound {bound} violated: achieved latency "
                f"{achieved} at node {problem.source}"
            )
    if bounded.cost < base.cost and not _close(bounded.cost, base.cost):
        messages.append(
            f"constrained cost {bounded.cost!r} beats unconstrained optimum "
            f"{base.cost!r} at node {problem.source}"
        )
    return messages


# ----------------------------------------------------------------------
# budget.*
# ----------------------------------------------------------------------
def check_budget_feasibility(allocation, problems, overlay: str) -> list[str]:
    """``budget.feasibility``: the allocation is spendable and honest.

    Independent re-derivation: capacities come from the problems' own
    candidate pools (not the allocator's curves), and every per-node cost
    is recomputed by running the overlay's local selector fresh at the
    allocated quota — through the selection-module attributes, so a
    monkeypatched allocator or solver cannot satisfy its own checker.
    Assumes unweighted curves (load 1), which is how the scenario engine
    allocates.
    """
    messages: list[str] = []
    capacities = {
        node_id: len(problem.candidates) for node_id, problem in problems.items()
    }
    rogue = sorted(set(allocation.quotas) - set(problems))
    if rogue:
        messages.append(f"allocation covers nodes without problems: {rogue}")
        return messages
    spendable = min(allocation.total, sum(capacities.values()))
    spent = sum(allocation.quotas.values())
    if spent != spendable:
        messages.append(
            f"allocation spends {spent} pointers but the spendable budget is "
            f"min(K={allocation.total}, capacity={sum(capacities.values())}) "
            f"= {spendable}"
        )
    for node_id in sorted(allocation.quotas):
        quota = allocation.quotas[node_id]
        if quota < 0 or quota > capacities[node_id]:
            messages.append(
                f"node {node_id} quota {quota} outside [0, capacity "
                f"{capacities[node_id]}]"
            )
            continue
        problem = problems[node_id].with_k(quota)
        if overlay == "chord":
            fresh = chord_selection.select_chord(problem)
        elif overlay == "kademlia":
            fresh = kademlia_selection.select_kademlia(problem)
        else:
            fresh = pastry_selection.select_pastry(problem)
        reported = allocation.costs.get(node_id)
        if reported is None:
            messages.append(f"node {node_id} has a quota but no reported cost")
        elif not _close(reported, fresh.cost):
            messages.append(
                f"node {node_id} reported cost {reported!r} at quota {quota} "
                f"but a fresh local selection achieves {fresh.cost!r}"
            )
    return messages


# ----------------------------------------------------------------------
# routing.*
# ----------------------------------------------------------------------
def check_routing_progress(overlay_kind: str, space, trace) -> list[str]:
    """Strict per-delivered-hop progress under the paper's metrics."""
    messages: list[str] = []
    path = trace.path
    key = trace.key
    if overlay_kind == "chord":
        gaps = [space.gap(node, key) for node in path]
        for index, (before, after) in enumerate(zip(gaps, gaps[1:])):
            if after >= before:
                messages.append(
                    f"hop {index} ({path[index]} -> {path[index + 1]}) did "
                    f"not shrink the clockwise gap to key {key}: "
                    f"{before} -> {after}"
                )
        return messages
    if overlay_kind == "kademlia":
        distances = [node ^ key for node in path]
        for index, (before, after) in enumerate(zip(distances, distances[1:])):
            if after >= before:
                messages.append(
                    f"hop {index} ({path[index]} -> {path[index + 1]}) did "
                    f"not shrink the XOR distance to key {key}: "
                    f"{before} -> {after}"
                )
        return messages
    for index, (cur, nxt) in enumerate(zip(path, path[1:])):
        lcp_cur = space.common_prefix_length(cur, key)
        lcp_next = space.common_prefix_length(nxt, key)
        dist_cur = circular_distance(space, cur, key)
        dist_next = circular_distance(space, nxt, key)
        if lcp_next > lcp_cur:
            continue
        if dist_next < dist_cur:
            continue
        if dist_next == dist_cur and nxt < cur:
            continue
        messages.append(
            f"hop {index} ({cur} -> {nxt}) made no progress toward key "
            f"{key}: lcp {lcp_cur} -> {lcp_next}, circular distance "
            f"{dist_cur} -> {dist_next}"
        )
    return messages


def _oracle_responsible(overlay_kind: str, space, alive, key: int) -> int:
    """Linear-scan responsibility oracle (independent of bisect paths)."""
    if overlay_kind == "chord":
        # The predecessor minimizes the clockwise gap node -> key (eq. 6
        # operand): gaps are distinct per node, so no tie-break needed.
        return min(alive, key=lambda nid: space.gap(nid, key))
    if overlay_kind == "kademlia":
        # XOR with a fixed key is injective: the minimizer is unique.
        return min(alive, key=lambda nid: nid ^ key)
    return min(alive, key=lambda nid: (circular_distance(space, nid, key), nid))


def check_routing_termination(
    overlay_kind: str, space, alive, trace, clean: bool
) -> list[str]:
    """Success lands on the oracle-responsible node; clean overlays never fail."""
    messages: list[str] = []
    expected = _oracle_responsible(overlay_kind, space, alive, trace.key)
    if trace.succeeded:
        if trace.destination != expected:
            messages.append(
                f"lookup for key {trace.key} claimed destination "
                f"{trace.destination} but the responsible node is {expected}"
            )
        if trace.path[-1] != trace.destination:
            messages.append(
                f"lookup for key {trace.key} ended its path at "
                f"{trace.path[-1]} but reported destination {trace.destination}"
            )
    else:
        if trace.destination is not None:
            messages.append(
                f"failed lookup for key {trace.key} still reported a "
                f"destination {trace.destination}"
            )
        if clean:
            messages.append(
                f"lookup for key {trace.key} from {trace.source} failed on a "
                f"fully stabilized overlay with no message loss"
            )
    return messages


def check_retry_bounds(trace, max_attempts: int, limit: int) -> list[str]:
    """Exact per-event and per-lookup retry/timeout accounting."""
    messages: list[str] = []
    for index, event in enumerate(trace.events):
        if not 1 <= event.attempts <= max_attempts:
            messages.append(
                f"event {index} ({event.forwarder} -> {event.target}) made "
                f"{event.attempts} attempts with max_attempts={max_attempts}"
            )
        expected_timeouts = event.attempts - 1 if event.delivered else event.attempts
        if event.timeouts != expected_timeouts:
            messages.append(
                f"event {index} ({event.forwarder} -> {event.target}) "
                f"recorded {event.timeouts} timeouts, expected "
                f"{expected_timeouts} from {event.attempts} attempts "
                f"(delivered={event.delivered})"
            )
        if len(event.verdicts) != event.timeouts:
            messages.append(
                f"event {index} carries {len(event.verdicts)} fault verdicts "
                f"for {event.timeouts} timeouts"
            )
    delivered = sum(1 for event in trace.events if event.delivered)
    timeouts = sum(event.timeouts for event in trace.events)
    if delivered != trace.hops:
        messages.append(
            f"trace shows {delivered} delivered hops but the lookup "
            f"reported hops={trace.hops}"
        )
    if timeouts != trace.timeouts:
        messages.append(
            f"trace shows {timeouts} timeouts but the lookup reported "
            f"timeouts={trace.timeouts}"
        )
    if trace.hops + trace.timeouts > limit + 1:
        messages.append(
            f"hops + timeouts = {trace.hops + trace.timeouts} exceeds the "
            f"routing limit {limit} (+1 for the final probe)"
        )
    return messages


# ----------------------------------------------------------------------
# state.*
# ----------------------------------------------------------------------
def _check_alive_bookkeeping(overlay) -> list[str]:
    messages: list[str] = []
    alive = overlay.alive_ids()
    if alive != sorted(set(alive)):
        messages.append(f"live-id list is not strictly sorted: {alive}")
    alive_set = set(alive)
    for node_id, node in sorted(overlay.nodes.items()):
        if node.alive and node_id not in alive_set:
            messages.append(f"node {node_id} is alive but missing from the live list")
        if not node.alive and node_id in alive_set:
            messages.append(f"node {node_id} is crashed but still in the live list")
    return messages


def check_chord_state(ring) -> list[str]:
    """Ring table == core ∪ successors ∪ auxiliary, minus self."""
    messages = _check_alive_bookkeeping(ring)
    for node_id in ring.alive_ids():
        node = ring.node(node_id)
        expected = (node.core | set(node.successors) | node.auxiliary) - {node_id}
        actual = set(node.table.entries())
        if actual != expected:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            messages.append(
                f"node {node_id} ring table incoherent: missing {missing}, "
                f"extra {extra}"
            )
    return messages


def check_chord_successors(ring) -> list[str]:
    """Post-stabilization successor lists match the global ground truth."""
    messages: list[str] = []
    for node_id, successors in sorted(ring.successor_snapshot().items()):
        reference = ring.reference_successors(node_id)
        if successors != reference:
            messages.append(
                f"node {node_id} successor list {list(successors)} != "
                f"ground truth {list(reference)}"
            )
        dead = sorted(s for s in successors if not ring.nodes[s].alive)
        if dead:
            messages.append(
                f"node {node_id} successor list holds crashed nodes {dead}"
            )
    return messages


def check_pastry_state(network) -> list[str]:
    """Cell union == core ∪ leaves ∪ auxiliary, minus self."""
    messages = _check_alive_bookkeeping(network)
    for node_id in network.alive_ids():
        node = network.node(node_id)
        expected = (node.core | node.leaves | node.auxiliary) - {node_id}
        actual: set[int] = set()
        for entries in node.cells.values():
            actual.update(entries)
        if actual != expected:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            messages.append(
                f"node {node_id} cell union incoherent: missing {missing}, "
                f"extra {extra}"
            )
    return messages


def check_pastry_leaf_sets(network) -> list[str]:
    """Post-stabilization leaf sets: ground truth + symmetry + liveness."""
    messages: list[str] = []
    snapshot = network.leaf_snapshot()
    for node_id, leaves in sorted(snapshot.items()):
        reference = network.reference_leaf_set(node_id)
        if leaves != reference:
            messages.append(
                f"node {node_id} leaf set {sorted(leaves)} != ground truth "
                f"{sorted(reference)}"
            )
        dead = sorted(leaf for leaf in leaves if not network.nodes[leaf].alive)
        if dead:
            messages.append(f"node {node_id} leaf set holds crashed nodes {dead}")
        for leaf in sorted(leaves):
            if leaf in snapshot and node_id not in snapshot[leaf]:
                messages.append(
                    f"leaf-set asymmetry: {leaf} in leaves({node_id}) but "
                    f"{node_id} not in leaves({leaf})"
                )
    return messages


def check_kademlia_state(network) -> list[str]:
    """Per-class index == core ∪ auxiliary, minus self, correctly filed."""
    messages = _check_alive_bookkeeping(network)
    for node_id in network.alive_ids():
        node = network.node(node_id)
        expected = (node.core | node.auxiliary) - {node_id}
        actual: set[int] = set()
        for entries in node.classes.values():
            actual.update(entries)
        if actual != expected:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            messages.append(
                f"node {node_id} class-index union incoherent: missing "
                f"{missing}, extra {extra}"
            )
            continue
        for prefix, entries in sorted(node.classes.items()):
            for entry in sorted(entries):
                true_prefix = network.space.common_prefix_length(node_id, entry)
                if true_prefix != prefix:
                    messages.append(
                        f"node {node_id} filed contact {entry} under prefix "
                        f"class {prefix}, true common prefix is {true_prefix}"
                    )
    return messages


def check_kademlia_buckets(network) -> list[str]:
    """Post-stabilization cores match a ground-truth k-bucket rebuild."""
    messages: list[str] = []
    for node_id in network.alive_ids():
        node = network.node(node_id)
        reference = network.reference_core(node_id)
        if node.core != reference:
            missing = sorted(reference - node.core)
            extra = sorted(node.core - reference)
            messages.append(
                f"node {node_id} core != ground-truth bucket rebuild: "
                f"missing {missing}, extra {extra}"
            )
        dead = sorted(
            contact for contact in node.core if not network.nodes[contact].alive
        )
        if dead:
            messages.append(f"node {node_id} core holds crashed nodes {dead}")
    return messages


def check_responsibility(overlay_kind: str, overlay, keys) -> list[str]:
    """Bisect-based responsible() vs the linear-scan oracle."""
    messages: list[str] = []
    alive = overlay.alive_ids()
    for key in keys:
        fast = overlay.responsible(key)
        oracle = _oracle_responsible(overlay_kind, overlay.space, alive, key)
        if fast != oracle:
            messages.append(
                f"responsible({key}) returned {fast} but the linear-scan "
                f"oracle says {oracle}"
            )
    return messages


# ----------------------------------------------------------------------
# cachestats.*
# ----------------------------------------------------------------------
def check_cachestats_conservation(recorder) -> list[str]:
    """``cachestats.conservation``: the attribution ledger is honest.

    Independent re-derivation: the (node, class) aggregates and the
    grand credit total are re-summed from the per-pointer buckets rather
    than read back from the recorder's own ``class_totals``, so a
    recorder that double-credits (or mis-buckets) cannot satisfy its own
    checker.
    """
    messages: list[str] = []
    resummed: dict[tuple[int, str], list[int]] = {}
    for (owner, target, pointer_class), stats in sorted(recorder.by_pointer.items()):
        label = f"pointer {owner} -> {target} [{pointer_class}]"
        if stats.hits > stats.uses:
            messages.append(f"{label} recorded {stats.hits} hits > {stats.uses} uses")
        if stats.stale_uses > stats.uses:
            messages.append(
                f"{label} recorded {stats.stale_uses} stale uses > "
                f"{stats.uses} uses"
            )
        bucket = resummed.setdefault((owner, pointer_class), [0, 0, 0, 0])
        bucket[0] += stats.uses
        bucket[1] += stats.hits
        bucket[2] += stats.stale_uses
        bucket[3] += stats.credited
    for (node_id, pointer_class), stats in sorted(recorder.by_node_class.items()):
        expected = resummed.get((node_id, pointer_class), [0, 0, 0, 0])
        actual = [stats.uses, stats.hits, stats.stale_uses, stats.credited]
        if actual != expected:
            messages.append(
                f"(node {node_id}, class {pointer_class}) aggregate {actual} "
                f"!= per-pointer re-sum {expected}"
            )
    rogue = sorted(set(resummed) - set(recorder.by_node_class))
    if rogue:
        messages.append(f"per-pointer buckets without a (node, class) aggregate: {rogue}")
    for failure in recorder.conservation_failures:
        messages.append(f"per-lookup conservation violated: {failure}")
    totals = recorder.totals
    credit_total = sum(stats.credited for stats in recorder.by_pointer.values())
    if credit_total != totals.credited:
        messages.append(
            f"per-pointer credits sum to {credit_total} but the ledger "
            f"records {totals.credited}"
        )
    expected_credit = (
        totals.oblivious_hops - totals.residual_hops - totals.observed_hops
    )
    if totals.credited != expected_credit:
        messages.append(
            f"conservation law broken in total: credited {totals.credited} != "
            f"oblivious {totals.oblivious_hops} - residual "
            f"{totals.residual_hops} - observed {totals.observed_hops}"
        )
    if totals.attributed + totals.unattributed != totals.lookups:
        messages.append(
            f"attributed {totals.attributed} + unattributed "
            f"{totals.unattributed} != lookups {totals.lookups}"
        )
    return messages


# ----------------------------------------------------------------------
# trace.*
# ----------------------------------------------------------------------
def check_trace_reconciliation(counters, stats, results) -> list[str]:
    """Trace counters vs HopStatistics vs raw lookup results — exact."""
    messages: list[str] = []
    successes = sum(1 for result in results if result.succeeded)
    checks = [
        ("lookup count", counters.lookups, stats.lookups),
        ("lookup count vs results", counters.lookups, len(results)),
        ("success count", counters.succeeded, stats.successes),
        ("success count vs results", counters.succeeded, successes),
        ("failure count", counters.failed, stats.failures),
        (
            "delivered hops (all lookups)",
            counters.total_hops,
            sum(result.hops for result in results),
        ),
        (
            "delivered hops (successes only)",
            sum(result.hops for result in results if result.succeeded),
            stats.total_hops,
        ),
        ("timeouts", counters.total_timeouts, stats.total_timeouts),
        (
            "timeouts vs results",
            counters.total_timeouts,
            sum(result.timeouts for result in results),
        ),
    ]
    for label, left, right in checks:
        if left != right:
            messages.append(f"{label} does not reconcile: {left} != {right}")
    return messages


# ----------------------------------------------------------------------
# engine.*
# ----------------------------------------------------------------------
def _chord_entry_class(node, entry: int) -> int:
    """Strongest-claim pointer class code (mirrors the tracer's rule)."""
    if entry in node.core:
        return 0
    if entry in node.successors:
        return 1
    if entry in node.auxiliary:
        return 2
    return 3


def _check_chord_snapshot(overlay) -> list[str]:
    import numpy as np

    from repro.engine.columnar import snapshot_chord

    snapshot = snapshot_chord(overlay)
    messages: list[str] = []
    alive = overlay.alive_ids()
    if snapshot.ids.tolist() != list(alive):
        return [f"columnar id axis != sorted live ids ({snapshot.n} vs {len(alive)})"]
    offsets = snapshot.table_offsets.tolist()
    table_ids = snapshot.table_ids.tolist()
    table_class = snapshot.table_class.tolist()
    for position, node_id in enumerate(alive):
        node = overlay.node(node_id)
        entries = node.table.entries()
        start, end = offsets[position], offsets[position + 1]
        if table_ids[start:end] != entries:
            messages.append(
                f"node {node_id} CSR row {table_ids[start:end]} != object "
                f"table {entries}"
            )
            continue
        for index, entry in enumerate(entries):
            expected = _chord_entry_class(node, entry)
            if table_class[start + index] != expected:
                messages.append(
                    f"node {node_id} entry {entry} classed "
                    f"{table_class[start + index]}, expected {expected}"
                )
    if snapshot.hop_gaps is None:
        return messages
    width = snapshot.hop_width
    pad = int(np.iinfo(snapshot.hop_gaps.dtype).max)
    hop_gaps = snapshot.hop_gaps.tolist()
    hop_pos = snapshot.hop_pos.tolist()
    hop_class = snapshot.hop_class.tolist()
    mask = snapshot.mask
    max_count = max(offsets[p + 1] - offsets[p] for p in range(len(alive)))
    if width != max_count + 1:
        messages.append(f"hop width {width} != max row count {max_count} + 1")
        return messages
    for position, node_id in enumerate(alive):
        node = overlay.node(node_id)
        ranked = sorted(
            ((entry - node_id) & mask, entry) for entry in node.table.entries()
        )
        base = position * width
        bad = False
        for col, (gap, entry) in enumerate(ranked):
            if (
                hop_gaps[base + col] != gap
                or alive[hop_pos[base + col]] != entry
                or hop_class[base + col] != _chord_entry_class(node, entry)
            ):
                messages.append(
                    f"node {node_id} dense slot {col} does not match its "
                    f"rank-{col} table entry {entry} (gap {gap})"
                )
                bad = True
                break
        if bad:
            continue
        last_entry = ranked[-1][1]
        last_class = _chord_entry_class(node, last_entry)
        for col in range(len(ranked), width):
            if (
                hop_gaps[base + col] != pad
                or alive[hop_pos[base + col]] != last_entry
                or hop_class[base + col] != last_class
            ):
                messages.append(
                    f"node {node_id} pad column {col} does not carry the pad "
                    f"gap and duplicate the max-gap entry {last_entry}"
                )
                break
    return messages


def _check_pastry_snapshot(overlay) -> list[str]:
    from repro.engine.columnar import snapshot_pastry

    snapshot = snapshot_pastry(overlay)
    messages: list[str] = []
    space = overlay.space
    alive = overlay.alive_ids()
    if snapshot.ids.tolist() != list(alive):
        return [f"columnar id axis != sorted live ids ({snapshot.n} vs {len(alive)})"]
    for position, node_id in enumerate(alive):
        node = overlay.node(node_id)
        per_row: dict[int, list[int]] = {}
        for (row, __), bucket in node.cells.items():
            per_row.setdefault(row, []).extend(sorted(bucket))
        for row in range(snapshot.bits):
            start = int(snapshot.row_ptr[position, row])
            end = int(snapshot.row_ptr[position, row + 1])
            got = snapshot.nbr_ids[start:end].tolist()
            expected = per_row.get(row, [])
            if got != expected:
                messages.append(
                    f"node {node_id} prefix row {row}: CSR {got} != cells "
                    f"{expected}"
                )
                continue
            for index, entry in enumerate(expected):
                code = (
                    0 if entry in node.core else 1 if entry in node.leaves else 2
                )
                if int(snapshot.nbr_class[start + index]) != code:
                    messages.append(
                        f"node {node_id} entry {entry} classed "
                        f"{int(snapshot.nbr_class[start + index])}, expected {code}"
                    )
        leaves = sorted(node.leaves)
        leaf_row = snapshot.leaf_mat[position].tolist()
        if leaf_row[: len(leaves)] != leaves or any(
            value != node_id for value in leaf_row[len(leaves) :]
        ):
            messages.append(
                f"node {node_id} leaf row {leaf_row} != sorted leaves "
                f"{leaves} + own-id padding"
            )
        if bool(snapshot.no_leaves[position]) != (not leaves):
            messages.append(f"node {node_id} no_leaves flag is wrong")
        if leaves:
            expected_radius = max(
                circular_distance(space, node_id, leaf) for leaf in leaves
            )
            if int(snapshot.radius_max[position]) != expected_radius:
                messages.append(
                    f"node {node_id} proximity radius "
                    f"{int(snapshot.radius_max[position])} != "
                    f"{expected_radius}"
                )
    return messages


def check_engine_coherence(overlay_kind: str, overlay) -> list[str]:
    """The columnar snapshot mirrors the object overlay, field by field."""
    if overlay_kind == "chord":
        return _check_chord_snapshot(overlay)
    return _check_pastry_snapshot(overlay)


@dataclass(frozen=True)
class _BatchTrace:
    """Adapter: one batch lane in the shape the routing oracles consume."""

    key: int
    source: int
    path: list[int]
    succeeded: bool
    destination: int | None


def check_engine_routing(
    overlay_kind: str, overlay, sources, keys, clean: bool = True
) -> tuple[list[str], list[str]]:
    """Batched columnar lookups through the object-router oracles.

    Returns ``(progress, termination)`` message lists: each recorded
    batch path is fed to :func:`check_routing_progress` and
    :func:`check_routing_termination` via a trace adapter, plus a
    hops-vs-path consistency check the batch result makes possible.
    """
    from repro.engine.columnar import snapshot_chord, snapshot_pastry
    from repro.engine.router import batch_route_chord, batch_route_pastry

    space = overlay.space
    alive = overlay.alive_ids()
    if overlay_kind == "chord":
        result = batch_route_chord(
            snapshot_chord(overlay), sources, keys, record_paths=True
        )
    else:
        result = batch_route_pastry(
            snapshot_pastry(overlay), sources, keys, record_paths=True
        )
    progress: list[str] = []
    termination: list[str] = []
    for lane, (source, key) in enumerate(zip(sources, keys)):
        raw_destination = int(result.destinations[lane])
        trace = _BatchTrace(
            key=key,
            source=source,
            path=result.lane_path(lane),
            succeeded=bool(result.succeeded[lane]),
            destination=raw_destination if raw_destination >= 0 else None,
        )
        progress.extend(
            f"lane {lane}: {message}"
            for message in check_routing_progress(overlay_kind, space, trace)
        )
        termination.extend(
            f"lane {lane}: {message}"
            for message in check_routing_termination(
                overlay_kind, space, alive, trace, clean
            )
        )
        hops = int(result.hops[lane])
        if trace.succeeded and hops != len(trace.path) - 1:
            termination.append(
                f"lane {lane}: reported {hops} hops but the recorded path "
                f"has {len(trace.path) - 1} forwards"
            )
    return progress, termination
