"""Invariant-checking verification subsystem.

The paper's correctness story rests on exact structural properties — the
nesting property (P) of greedy Pastry selection (Lemma 4.1), equality of
the fast Chord algorithm with the O(n^2 k) DP (eq. 7-10), and monotone
progress of every routed hop under the overlay distance metrics (eq. 6).
This package turns those properties into a standing adversary:

* :mod:`repro.verify.invariants` — the registry of machine-checked
  invariants with differential oracles (linear-scan responsibility,
  brute-force selection on tiny instances).
* :mod:`repro.verify.scenarios` — seeded scenario generation and the
  deterministic engine that drives both overlays through churn, faults
  and lookups while evaluating every applicable invariant per step.
* :mod:`repro.verify.shrink` — a greedy shrinker that minimizes a
  failing scenario while preserving the violated invariant, emitting a
  replayable ``VERIFY_REPRO_v1`` JSON document.
* :mod:`repro.verify.runner` — the ``repro check`` driver producing a
  deterministic ``CHECK_v1`` document (bit-identical across runs with
  the same seed, after :func:`~repro.obs.manifest.strip_volatile`).
"""

from repro.verify.invariants import REGISTRY, Invariant, Violation
from repro.verify.runner import CHECK_SCHEMA, check_scenarios
from repro.verify.scenarios import (
    Scenario,
    ScenarioReport,
    generate_scenario,
    generate_scenarios,
    run_scenario,
)
from repro.verify.shrink import (
    REPRO_SCHEMA,
    failure_document,
    load_failure,
    replay_failure,
    shrink,
)

__all__ = [
    "CHECK_SCHEMA",
    "REGISTRY",
    "REPRO_SCHEMA",
    "Invariant",
    "Scenario",
    "ScenarioReport",
    "Violation",
    "check_scenarios",
    "failure_document",
    "generate_scenario",
    "generate_scenarios",
    "load_failure",
    "replay_failure",
    "run_scenario",
    "shrink",
]
