"""The ``repro check`` driver: randomized invariant search over scenarios.

Runs ``count`` generated scenarios (alternating overlays unless pinned),
aggregates per-invariant evaluation counts, shrinks the first violation
of each failing scenario, and assembles everything into a ``CHECK_v1``
document. The document is a pure function of ``(count, seed, overlay)``
up to the manifest's quarantined ``volatile`` block, so two runs with the
same arguments are byte-identical after
:func:`~repro.obs.manifest.strip_volatile` — the bit-identity acceptance
gate of the verification subsystem itself.
"""

from __future__ import annotations

from repro.obs.manifest import build_manifest
from repro.verify.invariants import REGISTRY
from repro.verify.scenarios import generate_scenarios, run_scenario
from repro.verify.shrink import failure_document, shrink

__all__ = ["CHECK_SCHEMA", "check_scenarios"]

CHECK_SCHEMA = "CHECK_v1"

#: Failures shrunk per run: one repro per failing scenario is plenty, and
#: shrinking is the expensive part (each shrink re-runs scenarios).
_MAX_SHRUNK_FAILURES = 5


def check_scenarios(
    count: int = 200,
    seed: int = 0,
    overlay: str | None = None,
    *,
    shrink_failures: bool = True,
    shrink_budget: int = 200,
) -> dict:
    """Run the scenario search and return the ``CHECK_v1`` document."""
    applicable = sorted(
        name
        for name, invariant in REGISTRY.items()
        if overlay is None or overlay in invariant.overlays
    )
    checks: dict[str, int] = {name: 0 for name in applicable}
    failures: list[dict] = []
    scenarios_failed = 0
    total_lookups = 0
    for index, scenario in enumerate(generate_scenarios(count, seed, overlay)):
        report = run_scenario(scenario)
        total_lookups += report.lookups
        for name, evaluations in report.checks.items():
            checks[name] = checks.get(name, 0) + evaluations
        if report.passed:
            continue
        scenarios_failed += 1
        first = report.violations[0]
        if shrink_failures and len(failures) < _MAX_SHRUNK_FAILURES:
            result = shrink(scenario, first.invariant, budget=shrink_budget)
            document = failure_document(scenario, result)
        else:
            document = {
                "invariant": first.invariant,
                "violation": first.to_dict(),
                "scenario": scenario.to_dict(),
            }
        document["scenario_index"] = index
        failures.append(document)
    return {
        "schema": CHECK_SCHEMA,
        "overlay": overlay or "all",
        "scenarios": count,
        "seed": seed,
        "passed": scenarios_failed == 0,
        "scenarios_failed": scenarios_failed,
        "lookups": total_lookups,
        "checks": dict(sorted(checks.items())),
        "failures": failures,
        "manifest": build_manifest(
            {"scenarios": count, "seed": seed, "overlay": overlay or "all"},
            seed=seed,
        ),
    }
