"""Greedy scenario shrinking and replayable failure documents.

When a scenario violates an invariant, the raw scenario is usually far
bigger than the bug: dozens of nodes, several churn events, a long lookup
tail. The shrinker applies the classic greedy delta-debugging loop —
propose a smaller variant, keep it iff the *same* invariant still fires —
until no proposed reduction reproduces the violation or the evaluation
budget runs out. Reductions, in preference order: drop whole steps, cut
step arguments (lookup counts, burst sizes), shrink the population,
shrink the auxiliary budget k, and disable message loss.

Preserving the violated *invariant name* (not the exact message) is the
standard fidelity/aggressiveness trade-off: messages carry node ids that
legitimately change as the scenario shrinks.

The result is emitted as a ``VERIFY_REPRO_v1`` JSON document carrying the
shrunk scenario, the violation, the original scenario for context, and a
``MANIFEST_v1`` provenance block. :func:`replay_failure` (surfaced as
``repro check --replay``) re-runs the embedded scenario deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.obs.manifest import build_manifest
from repro.util.errors import ConfigurationError
from repro.verify.invariants import Violation
from repro.verify.scenarios import Scenario, ScenarioReport, run_scenario

__all__ = [
    "REPRO_SCHEMA",
    "ShrinkResult",
    "failure_document",
    "load_failure",
    "replay_failure",
    "shrink",
]

REPRO_SCHEMA = "VERIFY_REPRO_v1"

#: Default cap on scenario re-executions during one shrink.
_DEFAULT_BUDGET = 200


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized failing scenario plus the violation it preserves."""

    scenario: Scenario
    violation: Violation
    evaluations: int


def _first_violation(scenario: Scenario, invariant: str) -> Violation | None:
    """The first violation of ``invariant`` when running ``scenario``."""
    for violation in run_scenario(scenario).violations:
        if violation.invariant == invariant:
            return violation
    return None


def _candidates(scenario: Scenario):
    """Smaller variants of ``scenario``, most aggressive first."""
    steps = scenario.steps
    if len(steps) > 1:
        for index in range(len(steps) - 1, -1, -1):
            yield replace(scenario, steps=steps[:index] + steps[index + 1 :])
    for index, (op, arg) in enumerate(steps):
        if arg > 1:
            reductions = [1]
            if arg // 2 > 1:
                reductions.append(arg // 2)
            for smaller in reductions:
                shrunk = steps[:index] + ((op, smaller),) + steps[index + 1 :]
                yield replace(scenario, steps=shrunk)
    if scenario.n > 4:
        for smaller in dict.fromkeys((max(4, scenario.n // 2), scenario.n - 1)):
            yield replace(scenario, n=smaller)
    if scenario.k > 0:
        for smaller in dict.fromkeys((scenario.k // 2, scenario.k - 1)):
            yield replace(scenario, k=smaller)
    if scenario.loss_rate > 0.0:
        yield replace(scenario, loss_rate=0.0)


def shrink(
    scenario: Scenario, invariant: str, *, budget: int = _DEFAULT_BUDGET
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``invariant`` keeps firing.

    Raises :class:`~repro.util.errors.ConfigurationError` when the
    scenario does not actually violate ``invariant`` (a shrink that
    starts from a passing scenario would silently return garbage).
    """
    violation = _first_violation(scenario, invariant)
    if violation is None:
        raise ConfigurationError(
            f"scenario does not violate invariant {invariant!r}; nothing to shrink"
        )
    evaluations = 1
    current = scenario
    improved = True
    while improved and evaluations < budget:
        improved = False
        for candidate in _candidates(current):
            if evaluations >= budget:
                break
            evaluations += 1
            found = _first_violation(candidate, invariant)
            if found is not None:
                current, violation = candidate, found
                improved = True
                break  # greedy restart from the smaller scenario
    return ShrinkResult(scenario=current, violation=violation, evaluations=evaluations)


# ----------------------------------------------------------------------
# Failure documents
# ----------------------------------------------------------------------
def failure_document(original: Scenario, result: ShrinkResult) -> dict:
    """The replayable ``VERIFY_REPRO_v1`` JSON document for one failure."""
    return {
        "schema": REPRO_SCHEMA,
        "invariant": result.violation.invariant,
        "violation": result.violation.to_dict(),
        "scenario": result.scenario.to_dict(),
        "original": original.to_dict(),
        "shrink_evaluations": result.evaluations,
        "manifest": build_manifest(result.scenario, seed=result.scenario.seed),
    }


def load_failure(path) -> dict:
    """Parse and schema-check a ``VERIFY_REPRO_v1`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != REPRO_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a {REPRO_SCHEMA} document "
            f"(schema={document.get('schema')!r})"
        )
    return document


def replay_failure(document) -> ScenarioReport:
    """Re-run the scenario embedded in a failure document (or its path).

    Deterministic: replaying an unfixed failure reproduces the violation;
    after a fix the same replay passes — which is exactly how a shrunk
    repro should be used in a regression test.
    """
    if isinstance(document, (str, Path)):
        document = load_failure(document)
    return run_scenario(Scenario.from_dict(document["scenario"]))
