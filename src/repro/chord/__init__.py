"""Chord overlay substrate: ring, nodes, routing, stabilization."""

from repro.chord.node import ChordNode
from repro.chord.ring import (
    AuxiliaryPolicy,
    ChordRing,
    oblivious_policy,
    optimal_policy,
    uniform_policy,
)
from repro.chord.routing import LookupResult, RingTable, route

__all__ = [
    "AuxiliaryPolicy",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "RingTable",
    "oblivious_policy",
    "optimal_policy",
    "route",
    "uniform_policy",
]
