"""Chord ring routing: greedy clockwise forwarding over a sorted table.

The paper's Chord variant (Section II-B) forwards a query for key ``v`` at
node ``x`` to the neighbor *closest to ``v`` without passing it* in the
clockwise direction. With every node's neighbors (core fingers, successor
list and auxiliary pointers) merged into one id-sorted table, that neighbor
is the table's ring-predecessor of ``v`` — found by a single ``bisect``.

:func:`route` walks a query across the ring, modelling churn effects: a
forward to a dead neighbor costs a timeout, evicts the stale entry from the
forwarding node's table (the node learned the neighbor is gone) and retries
with the next-best entry, exactly like a lookup timeout in a deployed DHT.

Fault-aware routing: an optional :class:`~repro.faults.retry.RetryPolicy`
re-attempts a timed-out forward with exponential backoff (accumulated as a
hop penalty) before evicting, and an optional :class:`~repro.faults.plane.
FaultPlane` can drop or block individual messages (loss, partitions). The
defaults — single attempt, no fault plane — reproduce the pre-fault
behaviour bit for bit. Failover after eviction is implicit in the merged
table: the next ``next_hop`` query returns the next-best entry, which
includes the successor list.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.retry import RetryPolicy
from repro.obs.recorder import HopEvent
from repro.util.errors import NodeAbsentError
from repro.util.ids import IdSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.chord.ring import ChordRing
    from repro.faults.plane import FaultPlane
    from repro.obs.recorder import TraceRecorder

__all__ = ["RingTable", "LookupResult", "route"]

#: Default policy: one attempt, unit timeout penalty (legacy behaviour).
_SINGLE_ATTEMPT = RetryPolicy.single()


class RingTable:
    """A node's merged neighbor table, kept sorted by absolute id.

    Supports O(log t) next-hop queries (t = table size) and O(t) inserts /
    removals, which is fine for the O(log n + k) tables the paper studies.
    """

    __slots__ = ("owner", "space", "_entries")

    def __init__(self, owner: int, space: IdSpace) -> None:
        self.owner = owner
        self.space = space
        self._entries: list[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        index = bisect_right(self._entries, node_id) - 1
        return index >= 0 and self._entries[index] == node_id

    def entries(self) -> list[int]:
        """All entries in ascending id order (a copy)."""
        return list(self._entries)

    def add(self, node_id: int) -> None:
        """Insert ``node_id`` (no-op for duplicates or the owner itself)."""
        if node_id == self.owner or node_id in self:
            return
        insort(self._entries, node_id)

    def remove(self, node_id: int) -> None:
        """Remove ``node_id`` if present."""
        index = bisect_right(self._entries, node_id) - 1
        if index >= 0 and self._entries[index] == node_id:
            del self._entries[index]

    def clear(self) -> None:
        self._entries.clear()

    def next_hop(self, key: int) -> int | None:
        """The entry closest to ``key`` without passing it clockwise, or
        ``None`` when no entry lies in the clockwise interval
        ``(owner, key]`` (the owner is then the key's predecessor as far as
        this table knows)."""
        entries = self._entries
        if not entries:
            return None
        candidate = entries[bisect_right(entries, key) - 1]  # wraps via [-1]
        # Inlined IdSpace.gap: this runs once per forwarded hop and the
        # two method calls were the routing loop's hottest frames.
        mask = self.space.mask
        owner = self.owner
        gap = (candidate - owner) & mask
        if 0 < gap <= (key - owner) & mask:
            return candidate
        return None


@dataclass
class LookupResult:
    """Outcome of one Chord lookup.

    ``hops`` counts successful forwards; ``timeouts`` counts attempts that
    failed (dead neighbor, dropped or partition-blocked message).
    ``latency`` — the metric the paper plots — treats a timeout like a
    wasted hop; ``penalty`` holds any *extra* backoff latency beyond the
    one-hop-per-timeout baseline (0 under the single-attempt policy).
    """

    key: int
    source: int
    destination: int | None
    hops: int
    timeouts: int = 0
    succeeded: bool = True
    path: list[int] = field(default_factory=list)
    penalty: float = 0.0

    @property
    def latency(self) -> int | float:
        """Hop-count latency proxy: forwards plus timeout penalties."""
        base = self.hops + self.timeouts
        return base + self.penalty if self.penalty else base


def _pointer_class(node, target: int) -> str:
    """Which pointer kind resolved this hop; an id living in several sets
    is credited to the strongest claim (core > successor > auxiliary)."""
    if target in node.core:
        return "core"
    if target in node.successors:
        return "successor"
    if target in node.auxiliary:
        return "auxiliary"
    return "unknown"


def route(
    ring: "ChordRing",
    source: int,
    key: int,
    max_hops: int | None = None,
    record_access: bool = True,
    retry: RetryPolicy | None = None,
    faults: "FaultPlane | None" = None,
    trace: "TraceRecorder | None" = None,
) -> LookupResult:
    """Route a query for ``key`` from node ``source`` across ``ring``.

    Terminates when the current node's table holds no entry in
    ``(current, key]`` — the current node then believes it is the key's
    predecessor (its owner). The lookup succeeds when that belief matches
    the ring's ground truth; under churn, stale tables can strand a query
    early, which is reported as a failure.

    ``retry`` bounds delivery attempts per neighbor (default: one attempt,
    evict on first timeout); ``faults`` lets a fault plane drop or block
    individual forwards. A neighbor that exhausts its attempts is evicted
    and the next-best table entry (successor-list failover included) is
    tried on the next iteration.

    When ``record_access`` is set, the source node's frequency tracker is
    fed the true destination (the paper's "note the node containing the
    queried item for every query", Section III).

    ``trace`` attaches an observe-only recorder (see
    :mod:`repro.obs.recorder`): one :class:`~repro.obs.recorder.HopEvent`
    per attempted forwarding target, delivered to the recorder together
    with the finished result. Disabled recorders are normalized to
    ``None`` up front, so the default path pays only inert branch checks.
    """
    node = ring.node(source)
    if not node.alive:
        raise NodeAbsentError(f"source node {source} is not alive")
    rec = trace if trace is not None and trace.enabled else None
    events: list[HopEvent] | None = [] if rec is not None else None
    policy = retry if retry is not None else _SINGLE_ATTEMPT
    space = ring.space
    limit = max_hops if max_hops is not None else 4 * space.bits
    true_destination = ring.responsible(key)
    if record_access and true_destination != source:
        node.record_access(true_destination)

    current = node
    hops = 0
    timeouts = 0
    penalty = 0.0
    path = [source]
    while hops + timeouts <= limit:
        next_id = current.table.next_hop(key)
        if next_id is None:
            succeeded = current.node_id == true_destination
            result = LookupResult(
                key=key,
                source=source,
                destination=current.node_id if succeeded else None,
                hops=hops,
                timeouts=timeouts,
                succeeded=succeeded,
                path=path,
                penalty=penalty,
            )
            if rec is not None:
                rec.record_lookup(result, events)
            return result
        next_node = ring.node(next_id)
        if rec is None and faults is None and next_node.alive:
            # Fault-free fast path: with a live target, no fault plane and
            # no recorder, the first attempt always delivers, so the retry
            # loop below reduces to this one branch.
            delivered = True
        else:
            delivered = False
            if rec is not None:
                pointer_class = _pointer_class(current, next_id)
                timeouts_before = timeouts
                penalty_before = penalty
                verdicts: list[str] = []
            for attempt in range(policy.max_attempts):
                if hops + timeouts > limit:
                    break
                if next_node.alive and (
                    faults is None or faults.deliver(current.node_id, next_id)
                ):
                    delivered = True
                    break
                if rec is not None:
                    verdicts.append("dead" if not next_node.alive else faults.last_verdict)
                timeouts += 1
                penalty += policy.attempt_penalty(attempt) - 1.0
        if rec is not None:
            failed = timeouts - timeouts_before
            events.append(
                HopEvent(
                    forwarder=current.node_id,
                    target=next_id,
                    pointer_class=pointer_class,
                    delivered=delivered,
                    attempts=failed + (1 if delivered else 0),
                    timeouts=failed,
                    penalty=penalty - penalty_before,
                    verdicts=tuple(verdicts),
                )
            )
        if not delivered:
            current.evict(next_id)
            continue
        hops += 1
        path.append(next_id)
        current = next_node
    result = LookupResult(
        key=key,
        source=source,
        destination=None,
        hops=hops,
        timeouts=timeouts,
        succeeded=False,
        path=path,
        penalty=penalty,
    )
    if rec is not None:
        rec.record_lookup(result, events)
    return result
