"""The Chord overlay: node membership, key responsibility, stabilization,
and installation of auxiliary-neighbor policies.

Keys are assigned to their *predecessor* — the first node whose id equals
or precedes the key clockwise (the paper's variant, Section II-B).

Churn model (Section VI-C): nodes crash abruptly and later rejoin with the
same id but fresh state. Other nodes keep stale entries until they either
hit them (lookup timeout -> eviction) or run their next stabilization
round, which re-initializes all core entries — mirroring the paper's
"each node pings its core neighbors at regular intervals and also
periodically re-initializes all the entries".
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right, insort
from typing import Callable, Iterable

from repro.chord.node import ChordNode
from repro.chord.routing import LookupResult, route
from repro.core.chord_selection import select_chord
from repro.core.oblivious import select_chord_oblivious, select_uniform_random
from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace
from repro.util.validation import require_non_negative_int, require_positive_int

__all__ = [
    "AuxiliaryPolicy",
    "ChordRing",
    "oblivious_policy",
    "optimal_policy",
    "uniform_policy",
]

#: Signature of an auxiliary-selection policy: (problem, rng, overlay).
#: The overlay lets frequency-oblivious baselines draw random nodes per
#: distance class from the whole population, as the paper specifies.
AuxiliaryPolicy = Callable[[SelectionProblem, random.Random, "ChordRing"], SelectionResult]


def optimal_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "ChordRing | None" = None
) -> SelectionResult:
    """The paper's frequency-aware optimal selection (rng/overlay unused)."""
    return select_chord(problem)


def oblivious_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "ChordRing | None" = None
) -> SelectionResult:
    """The frequency-oblivious baseline of Section VI-A: random nodes per
    finger range, drawn from the live population when available."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_chord_oblivious(problem, rng, pool=pool)


def uniform_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "ChordRing | None" = None
) -> SelectionResult:
    """Uniform-random ablation baseline."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_uniform_random(problem, rng, "chord", pool=pool)


class ChordRing:
    """A complete Chord overlay with explicit, inspectable state.

    Example
    -------
    >>> ring = ChordRing.build(64, space=IdSpace(16), seed=1)
    >>> result = ring.lookup(ring.alive_ids()[0], key=12345)
    >>> result.succeeded
    True
    """

    def __init__(self, space: IdSpace | None = None, successor_list_size: int = 4) -> None:
        self.space = space or IdSpace()
        require_positive_int(successor_list_size, "successor_list_size")
        self.successor_list_size = successor_list_size
        self.nodes: dict[int, ChordNode] = {}
        self._alive: list[int] = []  # sorted ids of live nodes
        self._telemetry = None  # set via attach_telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Attach (or detach with ``None``) a telemetry runtime.

        The overlay stores the caller-normalized handle and feeds its
        maintenance spans — selection recomputes, pointer updates, stale
        evictions during stabilization. Observe-only: attaching telemetry
        never changes routing state or consumes randomness.
        """
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        space: IdSpace | None = None,
        seed: int = 0,
        successor_list_size: int = 4,
    ) -> "ChordRing":
        """Create a stabilized ring of ``n`` nodes with random distinct ids."""
        require_positive_int(n, "n")
        ring = cls(space, successor_list_size)
        rng = random.Random(seed)
        if n > ring.space.size:
            raise ConfigurationError(f"cannot place {n} nodes in a {ring.space.bits}-bit space")
        ids = rng.sample(range(ring.space.size), n)
        for node_id in ids:
            ring.add_node(node_id)
        ring.stabilize_all()
        return ring

    def add_node(self, node_id: int) -> ChordNode:
        """Add a brand-new node (not yet stabilized into others' tables)."""
        self.space.validate(node_id, "node id")
        if node_id in self.nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        node = ChordNode(node_id, self.space, self.successor_list_size)
        self.nodes[node_id] = node
        insort(self._alive, node_id)
        node.rebuild_core(self._alive)
        return node

    def join_via(self, node_id: int, bootstrap: int) -> ChordNode:
        """Protocol-faithful join: build the new node's tables by routing
        *through the overlay* from a bootstrap node (Chord's join).

        The joining node issues one lookup per finger interval — for each
        ``i``, a lookup for ``node_id + 2**i`` whose answering node's
        successor is the first live node in ``[node_id + 2**i,
        node_id + 2**(i+1))`` if one exists — plus one for its own
        successor list. Existing nodes learn about the newcomer only
        through their own later stabilization rounds, so responsibility
        for the newcomer's keys genuinely transfers over time, exactly as
        in a deployed ring.
        """
        self.space.validate(node_id, "node id")
        if node_id in self.nodes and self.nodes[node_id].alive:
            raise ConfigurationError(f"node {node_id} already exists")
        boot = self.nodes[bootstrap]
        if not boot.alive:
            raise NodeAbsentError(f"bootstrap node {bootstrap} is not alive")

        node = self.nodes.get(node_id)
        if node is None:
            node = ChordNode(node_id, self.space, self.successor_list_size)
            self.nodes[node_id] = node
        # Keep the node unroutable until its tables exist: a stale pointer
        # reaching a half-built node would otherwise strand join lookups.
        node.alive = False
        node.core.clear()
        node.successors.clear()
        node.auxiliary.clear()

        # Resolve each finger interval with a real lookup (before the node
        # becomes routable, so no lookup can traverse it half-built).
        for i in range(self.space.bits):
            target = self.space.add(node_id, 1 << i)
            answer = route(self, bootstrap, target, record_access=False)
            if answer.destination is None:
                continue
            owner = self.nodes[answer.destination]
            finger = self._successor_of(owner, target)
            if finger is None or finger == node_id:
                continue
            if self.space.gap(target, finger) < (1 << i):
                node.core.add(finger)
        # Successor list: the answer for our own id's successor.
        answer = route(self, bootstrap, node_id, record_access=False)
        if answer.destination is not None:
            predecessor = self.nodes[answer.destination]
            walker = self._successor_of(predecessor, self.space.add(node_id, 1))
            while walker is not None and walker != node_id and len(node.successors) < self.successor_list_size:
                node.successors.append(walker)
                walker = self._successor_of(self.nodes[walker], self.space.add(walker, 1))
                if walker in node.successors:
                    break
        node._rebuild_table()
        node.alive = True
        insort(self._alive, node_id)
        return node

    def _successor_of(self, node: ChordNode, target: int) -> int | None:
        """The first *live* entry at or clockwise-after ``target`` that
        ``node`` knows about (successor list first, then its whole table).

        Filtering liveness matters after a crash burst at the top of the
        ring: the join/refresh walkers would otherwise install crashed ids
        into successor lists, and a later failover would stop at the dead
        entry instead of wrapping to the first live one. When *everything*
        the node knows is crashed (the whole burst landed on its view),
        fall back to the ring's bookkeeping and wrap to the first live
        node at or after the target — the walkers calling this already
        operate on the global view, and aborting would leave the node with
        an empty successor list."""
        best = None
        best_gap = self.space.size
        for candidate in node.successors + node.table.entries():
            if not self.nodes[candidate].alive:
                continue
            gap = self.space.gap(target, candidate)
            if gap < best_gap:
                best = candidate
                best_gap = gap
        if best is not None:
            return best
        return self._first_live_at_or_after(target, exclude=node.node_id)

    def _first_live_at_or_after(self, target: int, exclude: int | None = None) -> int | None:
        """The first live node at or clockwise-after ``target``, wrapping
        around the ring; ``None`` when no live node (other than
        ``exclude``) exists."""
        if not self._alive:
            return None
        index = bisect_left(self._alive, target)
        for offset in range(len(self._alive)):
            candidate = self._alive[(index + offset) % len(self._alive)]
            if candidate != exclude:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> ChordNode:
        """Fetch a node object by id (KeyError when unknown)."""
        return self.nodes[node_id]

    def alive_ids(self) -> list[int]:
        """Sorted ids of live nodes (a copy)."""
        return list(self._alive)

    def alive_count(self) -> int:
        return len(self._alive)

    def responsible(self, key: int) -> int:
        """The node responsible for ``key``: its predecessor on the ring."""
        if not self._alive:
            raise NodeAbsentError("ring has no live nodes")
        index = bisect_right(self._alive, key) - 1
        return self._alive[index]  # wraps via [-1]

    # ------------------------------------------------------------------
    # Verification hooks (read-only introspection)
    # ------------------------------------------------------------------
    def successor_snapshot(self) -> dict[int, tuple[int, ...]]:
        """Per-live-node successor lists, as installed right now."""
        return {
            node_id: self.nodes[node_id].successor_snapshot()
            for node_id in self._alive
        }

    def reference_successors(self, node_id: int) -> tuple[int, ...]:
        """Ground-truth successor list from the global view: the next
        ``successor_list_size`` live nodes clockwise of ``node_id`` — what
        a stabilization round installs. Verification compares the per-node
        state against this independent derivation."""
        others = [nid for nid in self._alive if nid != node_id]
        if not others:
            return ()
        others.sort(key=lambda nid: self.space.gap(self.space.add(node_id, 1), nid))
        return tuple(others[: self.successor_list_size])

    def hop_distances(self, path: Iterable[int], key: int) -> list[int]:
        """The clockwise gap from each path node to ``key`` — the quantity
        the paper's Chord distance metric (eq. 6) takes the bit-length of.
        Strictly decreasing along any correctly routed path."""
        return [self.space.gap(node_id, key) for node_id in path]

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Abruptly fail a node; others keep stale pointers to it."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"node {node_id} is already down")
        node.crash()
        index = bisect_left(self._alive, node_id)
        del self._alive[index]

    def rejoin(self, node_id: int) -> None:
        """Bring a crashed node back with fresh state and correct core."""
        node = self.nodes[node_id]
        if node.alive:
            raise NodeAbsentError(f"node {node_id} is already up")
        insort(self._alive, node_id)
        node.rejoin(self._alive)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stabilize(self, node_id: int) -> None:
        """One node's stabilization round: re-initialize its core entries
        and drop auxiliary entries that are known dead (the modified ping
        process of Section III)."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot stabilize dead node {node_id}")
        tel = self._telemetry
        if tel is not None:
            with tel.span("maintenance.stabilize"):
                stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
                node.auxiliary -= stale_aux
                node.rebuild_core(self._alive)
            # One ping per auxiliary pointer plus the core re-init sweep.
            tel.add_work("maintenance.stabilize_messages", len(node.auxiliary) + len(stale_aux))
            tel.add_work("maintenance.stale_evictions", len(stale_aux))
            return
        stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
        node.auxiliary -= stale_aux
        node.rebuild_core(self._alive)

    def stabilize_all(self) -> None:
        """Stabilize every live node (used to reach a steady state)."""
        for node_id in self._alive:
            self.stabilize(node_id)

    def refresh_via(self, node_id: int) -> None:
        """Protocol-faithful fix-fingers: refresh one node's core entries
        by routing lookups *through its own current table* (Chord's
        ``fix_fingers``), rather than consulting the global view.

        Converges to the same entries as :meth:`stabilize` on a consistent
        overlay, but propagates knowledge only as fast as real routing
        would — a newly joined node becomes a finger of others only once
        some path already leads to it.
        """
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot refresh dead node {node_id}")
        fingers: set[int] = set()
        for i in range(self.space.bits):
            target = self.space.add(node_id, 1 << i)
            answer = route(self, node_id, target, record_access=False)
            if answer.destination is None:
                continue
            owner = self.nodes[answer.destination]
            finger = self._successor_of(owner, target)
            if finger is None or finger == node_id:
                continue
            if self.space.gap(target, finger) < (1 << i):
                fingers.add(finger)
        node.core = fingers
        # Refresh the successor list by walking from the first finger.
        node.successors.clear()
        walker = self._successor_of(node, self.space.add(node_id, 1))
        while (
            walker is not None
            and walker != node_id
            and len(node.successors) < self.successor_list_size
        ):
            node.successors.append(walker)
            walker = self._successor_of(self.nodes[walker], self.space.add(walker, 1))
            if walker in node.successors:
                break
        stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
        node.auxiliary -= stale_aux
        node._rebuild_table()

    def recompute_auxiliary(
        self,
        node_id: int,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> SelectionResult:
        """Run an auxiliary-selection policy at one node and install the
        result (the periodic recomputation of Section III).

        Only currently-observed peers enter the problem; peers the node has
        learned are dead were already dropped from its tracker by
        :meth:`ChordNode.evict` callers. ``frequency_limit`` truncates to
        the top-n observed peers (the paper's streaming-top-n note).
        """
        require_non_negative_int(k, "k")
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot select auxiliaries at dead node {node_id}")
        frequencies = node.frequency_snapshot(frequency_limit)
        problem = SelectionProblem(
            space=self.space,
            source=node_id,
            frequencies=frequencies,
            core_neighbors=frozenset(node.core | set(node.successors)),
            k=k,
        )
        tel = self._telemetry
        if tel is not None:
            previous = set(node.auxiliary)
            with tel.span("selection.recompute"):
                result = policy(problem, rng, self)
                node.set_auxiliary(set(result.auxiliary))
            tel.add_work(
                "selection.pointer_updates", len(previous ^ set(result.auxiliary))
            )
            return result
        result = policy(problem, rng, self)
        node.set_auxiliary(set(result.auxiliary))
        return result

    def recompute_all_auxiliary(
        self,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> None:
        """Recompute auxiliary sets at every live node."""
        for node_id in self.alive_ids():
            self.recompute_auxiliary(node_id, k, policy, rng, frequency_limit)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(
        self,
        source: int,
        key: int,
        record_access: bool = True,
        retry=None,
        faults=None,
        trace=None,
    ) -> LookupResult:
        """Route a query for ``key`` from ``source``; see :func:`route`.

        ``retry``/``faults`` forward to the router's fault-aware knobs
        (:class:`~repro.faults.retry.RetryPolicy`,
        :class:`~repro.faults.plane.FaultPlane`); ``trace`` attaches an
        observe-only :class:`~repro.obs.recorder.TraceRecorder`."""
        return route(
            self,
            source,
            key,
            record_access=record_access,
            retry=retry,
            faults=faults,
            trace=trace,
        )

    def seed_frequencies(self, node_id: int, frequencies: dict[int, float]) -> None:
        """Pre-load a node's tracker (used by stable-mode experiments that
        hand each node its long-run destination distribution directly)."""
        node = self.nodes[node_id]
        node.tracker = _tracker_from(frequencies, node_id)


def _tracker_from(frequencies: dict[int, float], owner: int):
    from repro.core.frequency import ExactFrequencyTable

    tracker = ExactFrequencyTable()
    for peer, weight in frequencies.items():
        if peer != owner and weight > 0:
            tracker.observe(peer, weight)
    return tracker
