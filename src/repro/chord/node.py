"""A single Chord peer: core fingers, successor list, auxiliary pointers.

Core neighbors follow the paper's Chord variant (Section II-B): the i-th
neighbor of a node ``x`` is the first live node whose id lies in the
clockwise interval ``[x + 2**i, x + 2**(i+1))``. A short successor list
(standard Chord practice) keeps the ring connected under churn.

Each node also owns:

* a frequency tracker recording the true destination of every query it
  issued (Section III's access-frequency maintenance), and
* a set of auxiliary neighbors installed by one of the selection policies.

All neighbor kinds are merged into a single :class:`RingTable`, reflecting
the paper's design decision that auxiliary neighbors are used by the
*unmodified* routing policy.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.chord.routing import RingTable
from repro.core.frequency import ExactFrequencyTable
from repro.util.ids import IdSpace

__all__ = ["ChordNode"]


class ChordNode:
    """One Chord peer.

    Parameters
    ----------
    node_id:
        Identifier on the ring.
    space:
        The identifier space.
    successor_list_size:
        Number of immediate successors tracked besides the fingers.
    """

    __slots__ = (
        "node_id",
        "space",
        "alive",
        "successor_list_size",
        "core",
        "successors",
        "auxiliary",
        "table",
        "tracker",
    )

    def __init__(self, node_id: int, space: IdSpace, successor_list_size: int = 4) -> None:
        self.node_id = space.validate(node_id, "node id")
        self.space = space
        self.alive = True
        self.successor_list_size = successor_list_size
        self.core: set[int] = set()
        self.successors: list[int] = []
        self.auxiliary: set[int] = set()
        self.table = RingTable(node_id, space)
        self.tracker = ExactFrequencyTable()

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------
    def rebuild_core(self, alive_ids: list[int]) -> None:
        """Refresh fingers and successor list from the current ring view.

        ``alive_ids`` is the sorted list of currently-live node ids. This
        models the *outcome* of Chord's periodic stabilization — after a
        stabilization round the node's core entries point at the correct
        first-node-per-interval — without simulating each fix-finger RPC.
        Between rounds the entries go stale, which is where churn bites.
        """
        space = self.space
        self.core.clear()
        self.successors.clear()
        index = bisect_left(alive_ids, self.node_id)
        present = index < len(alive_ids) and alive_ids[index] == self.node_id
        others = len(alive_ids) - (1 if present else 0)
        if others <= 0:
            self._rebuild_table()
            return
        for i in range(space.bits):
            low = space.add(self.node_id, 1 << i)
            span = 1 << i  # interval [x + 2^i, x + 2^(i+1)) has width 2^i
            neighbor = _first_in_interval(alive_ids, low, span, space)
            if neighbor is not None and neighbor != self.node_id:
                self.core.add(neighbor)
        successor = _first_in_interval(alive_ids, space.add(self.node_id, 1), space.size - 1, space)
        walker = successor
        while walker is not None and walker != self.node_id and len(self.successors) < self.successor_list_size:
            self.successors.append(walker)
            walker = _first_in_interval(alive_ids, space.add(walker, 1), space.size - 1, space)
            if walker in self.successors:
                break
        self._rebuild_table()

    def set_auxiliary(self, pointers: set[int]) -> None:
        """Install a new auxiliary-neighbor set (from any selection policy)."""
        self.auxiliary = {p for p in pointers if p != self.node_id}
        self._rebuild_table()

    def evict(self, dead_id: int) -> None:
        """Drop a neighbor discovered dead (lookup timeout, Section III)."""
        self.core.discard(dead_id)
        self.auxiliary.discard(dead_id)
        if dead_id in self.successors:
            self.successors.remove(dead_id)
        self.table.remove(dead_id)

    def neighbor_ids(self) -> set[int]:
        """All current neighbors: fingers, successors and auxiliaries."""
        return self.core | set(self.successors) | self.auxiliary

    def successor_snapshot(self) -> tuple[int, ...]:
        """Read-only copy of the successor list (verification hook)."""
        return tuple(self.successors)

    def _rebuild_table(self) -> None:
        self.table.clear()
        for neighbor in self.neighbor_ids():
            self.table.add(neighbor)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail abruptly: all volatile state (tables, history) is lost."""
        self.alive = False
        self.core.clear()
        self.successors.clear()
        self.auxiliary.clear()
        self.table.clear()
        self.tracker = ExactFrequencyTable()

    def rejoin(self, alive_ids: list[int]) -> None:
        """Come back with fresh (empty) auxiliary state and rebuilt core."""
        self.alive = True
        self.rebuild_core(alive_ids)

    # ------------------------------------------------------------------
    # Frequency tracking
    # ------------------------------------------------------------------
    def record_access(self, destination: int) -> None:
        """Note the node that held a queried item (Section III)."""
        if destination != self.node_id:
            self.tracker.observe(destination)

    def frequency_snapshot(self, limit: int | None = None) -> dict[int, float]:
        """Observed per-peer frequencies, optionally top-``limit`` only."""
        snapshot = self.tracker.snapshot(limit)
        snapshot.pop(self.node_id, None)
        return snapshot


def _first_in_interval(sorted_ids: list[int], start: int, width: int, space: IdSpace) -> int | None:
    """First id (clockwise) in ``[start, start + width)`` over the ring,
    given ``sorted_ids`` ascending. Returns ``None`` when the interval is
    empty of nodes."""
    if not sorted_ids:
        return None
    index = bisect_left(sorted_ids, start)
    candidate = sorted_ids[index % len(sorted_ids)]
    if space.gap(start, candidate) < width:
        return candidate
    return None
