"""Deterministic fault injection for the overlay simulations.

The package splits fault handling into four small pieces:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, the frozen
  description of what to inject (loss rate, crash bursts, partitions,
  stale-pointer corruption);
* :mod:`repro.faults.plane` — :class:`FaultPlane`, the seeded runtime
  decision-maker the routing layer consults per forward;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded retries with
  backoff-as-hop-penalty and eviction-based failover;
* :mod:`repro.faults.injector` — glue that applies a schedule to the
  stable runner (one-shot setup faults) or arms it on the churn
  simulation's event scheduler.

Everything is driven by named RNG substreams derived from the experiment
seed, so a fault-injected run is bit-reproducible at any worker count.
"""

from repro.faults.injector import (
    apply_stable_faults,
    arm_stable_plane,
    install_fault_events,
    maybe_corrupt,
)
from repro.faults.plane import FaultPlane
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule

__all__ = [
    "FaultPlane",
    "FaultSchedule",
    "RetryPolicy",
    "apply_stable_faults",
    "arm_stable_plane",
    "install_fault_events",
    "maybe_corrupt",
]
