"""Retry policy for overlay routing under faults.

A real DHT node that times out on a neighbor does not immediately declare
it dead: transient message loss would otherwise evict perfectly healthy
entries. The :class:`RetryPolicy` models the standard production answer —
bounded retransmissions with exponential backoff — in the hop-count
currency the paper's evaluation uses: attempt 0 is the ordinary timeout
and costs exactly one hop, and every *retry* (attempt ``i >= 1``) adds
``1 + backoff_base * backoff_factor**(i - 1)`` hop-equivalents of
latency — the timeout itself plus the backoff wait before it. Because
attempt 0 carries no backoff term, any policy reproduces the
pre-existing "a timeout costs one hop" accounting exactly until it
actually retries.

After ``max_attempts`` consecutive failures the router *fails over*: the
neighbor is evicted from the forwarding node's table and the next-best
entry — successor list on Chord, leaf set / next-ranked candidate on
Pastry — is tried, which is where the successor-list/leaf-set redundancy
pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with backoff expressed as a hop penalty.

    Example
    -------
    >>> RetryPolicy.single().max_attempts
    1
    >>> RetryPolicy.robust().attempt_penalty(0)
    1.0
    >>> RetryPolicy.robust().attempt_penalty(2)
    3.0
    """

    #: Delivery attempts per neighbor before failing over (>= 1).
    max_attempts: int = 1
    #: Hop-equivalent backoff cost of the first retry.
    backoff_base: float = 1.0
    #: Multiplicative backoff between consecutive attempts.
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts!r}"
            )
        if self.backoff_base <= 0:
            raise ConfigurationError(
                f"backoff_base must be positive, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    def attempt_penalty(self, attempt: int) -> float:
        """Latency penalty (in hops) of the ``attempt``-th failure (0-based).

        Attempt 0 is the ordinary timeout — one hop, no backoff — so the
        indexing matches the accounting promise above: a policy only
        diverges from the legacy single-attempt cost once it retries.
        Attempt ``i >= 1`` waited ``backoff_base * backoff_factor**(i-1)``
        hop-equivalents before timing out again.
        """
        if attempt <= 0:
            return 1.0
        return 1.0 + self.backoff_base * self.backoff_factor ** (attempt - 1)

    @classmethod
    def single(cls) -> "RetryPolicy":
        """One attempt, one-hop timeout penalty — the pre-fault-plane
        behaviour (evict on first timeout)."""
        return cls(max_attempts=1, backoff_base=1.0, backoff_factor=2.0)

    @classmethod
    def robust(cls) -> "RetryPolicy":
        """Three attempts with doubling backoff — the default whenever a
        fault schedule is active, so transient loss does not evict live
        neighbors."""
        return cls(max_attempts=3, backoff_base=1.0, backoff_factor=2.0)
