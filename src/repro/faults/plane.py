"""The deterministic fault plane: decides which messages die and who breaks.

One :class:`FaultPlane` instance accompanies one experiment run. All of
its randomness comes from a single :class:`random.Random` handed in by the
caller — in the experiment runners that generator is the registry
substream ``"fault-plane"`` derived from the cell's master seed, so the
exact sequence of injected faults is a pure function of the seed. Worker
processes rebuild the same registry from the same config, which is why
fault-injected cells stay bit-identical at any ``--jobs`` value.

Responsibilities:

* **Message loss** — :meth:`deliver` is consulted by the routing layer on
  every forward attempt; it drops the message with ``schedule.loss_rate``
  probability.
* **Partitions** — while a partition is active, messages crossing the cut
  (exactly one endpoint inside the isolated group) are blocked without
  consuming a random draw, so partition checks never perturb the loss
  stream.
* **Crash bursts** — :meth:`choose_burst` picks the victims of one
  correlated crash event (the caller applies the crashes, so the plane
  works against either overlay).
* **Stale-pointer corruption** — :meth:`corrupt_pointer` plants a pointer
  to a dead (preferably) or arbitrary node into a random live node's
  auxiliary set, modelling gossip that propagated outdated routing state.

The plane also counts everything it does (:attr:`dropped`,
:attr:`blocked`, :attr:`bursts`, :attr:`corrupted`), which the robustness
report surfaces so a reviewer can see the injected fault volume.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.faults.schedule import FaultSchedule

__all__ = ["FaultPlane"]


class FaultPlane:
    """Seeded decision-maker for all injected faults of one run.

    Example
    -------
    >>> plane = FaultPlane(FaultSchedule(loss_rate=0.5), random.Random(7))
    >>> outcomes = [plane.deliver(1, 2) for _ in range(100)]
    >>> 20 < sum(outcomes) < 80
    True
    """

    __slots__ = (
        "schedule",
        "rng",
        "partitioned",
        "delivered",
        "dropped",
        "blocked",
        "bursts",
        "corrupted",
        "last_verdict",
    )

    def __init__(self, schedule: FaultSchedule, rng: random.Random) -> None:
        self.schedule = schedule
        self.rng = rng
        self.partitioned: frozenset[int] = frozenset()
        self.delivered = 0
        self.dropped = 0
        self.blocked = 0
        self.bursts = 0
        self.corrupted = 0
        #: Why the most recent :meth:`deliver` refusal happened
        #: (``"dropped"`` or ``"blocked"``) — read by the tracing plane
        #: right after a failed delivery to attribute the timeout.
        self.last_verdict: str | None = None

    # ------------------------------------------------------------------
    # Message-level faults
    # ------------------------------------------------------------------
    def deliver(self, sender: int, receiver: int) -> bool:
        """Whether one message from ``sender`` to ``receiver`` gets through.

        Partition blocking is checked first and deterministically (no
        random draw); only then is the loss coin flipped, so enabling a
        partition does not shift the loss stream of unrelated messages.
        """
        if self.partitioned and (sender in self.partitioned) != (receiver in self.partitioned):
            self.blocked += 1
            self.last_verdict = "blocked"
            return False
        if self.schedule.loss_rate > 0.0 and self.rng.random() < self.schedule.loss_rate:
            self.dropped += 1
            self.last_verdict = "dropped"
            return False
        self.delivered += 1
        return True

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def start_partition(self, population: Sequence[int]) -> frozenset[int]:
        """Isolate a ``schedule.partition_fraction`` sample of ``population``.

        Returns the isolated group (also kept in :attr:`partitioned`).
        A no-op returning the empty set when the fraction is zero or the
        sample would be empty.
        """
        count = int(len(population) * self.schedule.partition_fraction)
        if count <= 0:
            return frozenset()
        self.partitioned = frozenset(self.rng.sample(list(population), count))
        return self.partitioned

    def end_partition(self) -> None:
        """Heal the partition (messages flow everywhere again)."""
        self.partitioned = frozenset()

    # ------------------------------------------------------------------
    # Crash bursts
    # ------------------------------------------------------------------
    def choose_burst(self, alive: Sequence[int], min_alive: int = 2) -> list[int]:
        """Victims of one crash burst, capped so at least ``min_alive``
        nodes survive. Sorted for reproducible crash order."""
        budget = min(self.schedule.crash_burst_size, max(0, len(alive) - min_alive))
        if budget <= 0:
            return []
        self.bursts += 1
        return sorted(self.rng.sample(list(alive), budget))

    # ------------------------------------------------------------------
    # Stale-pointer corruption
    # ------------------------------------------------------------------
    def corrupt_pointer(self, overlay) -> tuple[int, int] | None:
        """Plant one stale auxiliary pointer somewhere in ``overlay``.

        Picks a random live node and points it at a dead node when one
        exists (true staleness), else at a random other node (wrong-but-
        live state). Returns ``(victim, target)`` or ``None`` when the
        overlay is too small to corrupt.
        """
        alive = overlay.alive_ids()
        if not alive:
            return None
        victim_id = alive[self.rng.randrange(len(alive))]
        dead = sorted(
            node_id for node_id, node in overlay.nodes.items() if not node.alive
        )
        pool = dead if dead else [node_id for node_id in alive if node_id != victim_id]
        if not pool:
            return None
        target = pool[self.rng.randrange(len(pool))]
        victim = overlay.node(victim_id)
        victim.set_auxiliary(set(victim.auxiliary) | {target})
        self.corrupted += 1
        return victim_id, target

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Snapshot of everything the plane injected so far."""
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "blocked": self.blocked,
            "bursts": self.bursts,
            "corrupted": self.corrupted,
        }
