"""Wiring a :class:`FaultSchedule` into the two experiment modes.

Stable mode has no clock, so :func:`apply_stable_faults` applies the
"setup" faults once before measurement: one crash burst (victims stay
down, leaving stale pointers everywhere) and one static partition. The
per-query faults (message loss via :meth:`FaultPlane.deliver`, stale
corruption via :func:`maybe_corrupt`) are drawn during routing.

Churn mode runs on the discrete-event scheduler, so
:func:`install_fault_events` arms self-rescheduling events: periodic
crash bursts whose victims rejoin after ``crash_burst_downtime``, the
partition window, and a Poisson stream of stale-pointer corruptions.
Burst crashes deliberately overlap with the background churn process, so
both sides treat crash/rejoin as idempotent (a burst may hit an
already-down node, a churn rejoin may race a burst rejoin); the
tolerant transitions keep the event timeline deterministic either way.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.plane import FaultPlane

if TYPE_CHECKING:  # pragma: no cover - avoids a faults <-> sim import cycle
    from repro.sim.events import EventScheduler

__all__ = ["apply_stable_faults", "arm_stable_plane", "install_fault_events", "maybe_corrupt"]


def apply_stable_faults(plane: FaultPlane, overlay, telemetry=None) -> None:
    """One-shot setup faults for a stable-mode run: crash burst + static
    partition. Burst victims crash abruptly (stale pointers to them remain
    at every other node) and never come back during the measurement.

    ``telemetry`` is an optional (caller-normalized, duck-typed) telemetry
    runtime; injected faults bump ``repro_faults_injected_total`` by kind.
    """
    schedule = plane.schedule
    if schedule.crash_burst_size > 0:
        for victim in plane.choose_burst(overlay.alive_ids()):
            overlay.crash(victim)
            if telemetry is not None:
                telemetry.record_fault("burst_crash")
    if schedule.partition_fraction > 0.0:
        plane.start_partition(overlay.alive_ids())
        if telemetry is not None:
            telemetry.record_fault("partition_start")


def arm_stable_plane(schedule, rng: random.Random, overlay):
    """Build and apply a stable-mode fault plane; return ``(plane, retry)``.

    Convenience wrapper for clockless comparators (the extension studies):
    an absent or inactive schedule yields ``(None, None)``, which threads
    straight into ``lookup(retry=..., faults=...)`` as the fault-free
    legacy path. An active one gets a plane seeded with ``rng``, the
    one-shot setup faults, and the robust retry policy.
    """
    from repro.faults.retry import RetryPolicy

    if schedule is None or not schedule.active:
        return None, None
    plane = FaultPlane(schedule, rng)
    apply_stable_faults(plane, overlay)
    return plane, RetryPolicy.robust()


def maybe_corrupt(plane: FaultPlane, overlay, telemetry=None) -> None:
    """Stable mode's per-query corruption draw: with ``stale_rate``
    probability, plant one stale pointer before the query routes."""
    if plane.schedule.stale_rate > 0.0 and plane.rng.random() < plane.schedule.stale_rate:
        plane.corrupt_pointer(overlay)
        if telemetry is not None:
            telemetry.record_fault("stale_corruption")


def install_fault_events(
    scheduler: EventScheduler,
    plane: FaultPlane,
    overlay,
    events_rng: random.Random,
    duration: float,
    telemetry=None,
) -> None:
    """Arm every scheduled fault of ``plane.schedule`` on ``scheduler``.

    ``events_rng`` drives event *timing* (burst jitter-free periods need no
    draws, but Poisson corruption does); keeping it separate from the
    plane's own message-loss stream means adding a corruption process does
    not shift which messages get dropped. ``telemetry`` (optional,
    caller-normalized) counts every injected fault by kind; the counters
    never consume randomness, so attaching telemetry cannot shift the
    fault realization.
    """
    schedule = plane.schedule

    if schedule.crash_burst_size > 0:
        def fire_burst() -> None:
            victims = plane.choose_burst(overlay.alive_ids())
            for victim in victims:
                _crash_tolerant(overlay, victim)
                if telemetry is not None:
                    telemetry.record_fault("burst_crash")
                scheduler.schedule(
                    schedule.crash_burst_downtime, _make_rejoin(overlay, victim)
                )
            scheduler.schedule(schedule.crash_burst_interval, fire_burst)

        scheduler.schedule(schedule.crash_burst_interval, fire_burst)

    if schedule.partition_fraction > 0.0:
        def form_partition() -> None:
            plane.start_partition(overlay.alive_ids())
            if telemetry is not None:
                telemetry.record_fault("partition_start")

        def end_partition() -> None:
            plane.end_partition()
            if telemetry is not None:
                telemetry.record_fault("partition_end")

        scheduler.schedule_at(schedule.partition_start, form_partition)
        end = (
            schedule.partition_start + schedule.partition_duration
            if schedule.partition_duration > 0.0
            else duration
        )
        scheduler.schedule_at(end, end_partition)

    if schedule.stale_rate > 0.0:
        def fire_corruption() -> None:
            plane.corrupt_pointer(overlay)
            if telemetry is not None:
                telemetry.record_fault("stale_corruption")
            scheduler.schedule(events_rng.expovariate(schedule.stale_rate), fire_corruption)

        scheduler.schedule(events_rng.expovariate(schedule.stale_rate), fire_corruption)


def _crash_tolerant(overlay, node_id: int) -> None:
    """Crash a node unless it is already down (burst/churn overlap)."""
    if overlay.node(node_id).alive:
        overlay.crash(node_id)


def _make_rejoin(overlay, node_id: int):
    def rejoin() -> None:
        if not overlay.node(node_id).alive:
            overlay.rejoin(node_id)

    return rejoin
