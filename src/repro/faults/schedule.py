"""Declarative fault schedules for the deterministic fault plane.

A :class:`FaultSchedule` describes *what* degradation to inject into an
experiment — per-message loss, periodic crash bursts, a temporary network
partition, stale-pointer corruption — without saying anything about *when
individual faults fire*: that is decided by :class:`~repro.faults.plane.
FaultPlane` drawing from a named :class:`~repro.util.rng.
SeedSequenceRegistry` substream, which is what makes every injected fault
bit-reproducible given the master seed (including under ``--jobs``
process fan-out, where each cell derives its own registry from a
config-embedded seed).

The schedule is a frozen dataclass so it can live inside the frozen
:class:`~repro.sim.runner.ExperimentConfig`, be pickled to worker
processes, and compare by value in determinism tests.

Field semantics differ slightly between the two experiment modes:

========================  ==============================  =========================
field                     stable mode                     churn mode
========================  ==============================  =========================
``loss_rate``             per-forward drop probability    same
``crash_burst_size``      one burst before measurement    a burst every
                                                          ``crash_burst_interval`` s
``crash_burst_downtime``  victims stay down               victims rejoin after this
``partition_fraction``    static partition for the        partition active during
                          whole measurement               ``[partition_start,
                                                          partition_start +
                                                          partition_duration)``
``stale_rate``            per-query corruption            corruption events as a
                          probability                     Poisson process (events/s)
========================  ==============================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["FaultSchedule"]


@dataclass(frozen=True)
class FaultSchedule:
    """What to break, how hard, and (in churn mode) when.

    Example
    -------
    >>> FaultSchedule(loss_rate=0.05).active
    True
    >>> FaultSchedule().active
    False
    """

    #: Probability that any single forward (one overlay message) is lost.
    loss_rate: float = 0.0
    #: Nodes crashed per burst (0 disables bursts).
    crash_burst_size: int = 0
    #: Churn mode: virtual seconds between bursts.
    crash_burst_interval: float = 300.0
    #: Churn mode: burst victims rejoin after this many virtual seconds.
    crash_burst_downtime: float = 120.0
    #: Fraction of live nodes isolated behind a partition (0 disables).
    partition_fraction: float = 0.0
    #: Churn mode: virtual time at which the partition forms.
    partition_start: float = 0.0
    #: Churn mode: how long the partition lasts (0 with a positive
    #: fraction means "for the rest of the run").
    partition_duration: float = 0.0
    #: Stable mode: per-query probability of corrupting one node's table;
    #: churn mode: corruption events per virtual second.
    stale_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {self.loss_rate!r}")
        if self.crash_burst_size < 0:
            raise ConfigurationError(
                f"crash_burst_size must be non-negative, got {self.crash_burst_size!r}"
            )
        if self.crash_burst_interval <= 0:
            raise ConfigurationError(
                f"crash_burst_interval must be positive, got {self.crash_burst_interval!r}"
            )
        if self.crash_burst_downtime <= 0:
            raise ConfigurationError(
                f"crash_burst_downtime must be positive, got {self.crash_burst_downtime!r}"
            )
        if not 0.0 <= self.partition_fraction < 1.0:
            raise ConfigurationError(
                f"partition_fraction must be in [0, 1), got {self.partition_fraction!r}"
            )
        if self.partition_start < 0 or self.partition_duration < 0:
            raise ConfigurationError("partition window must not be negative")
        if not 0.0 <= self.stale_rate:
            raise ConfigurationError(f"stale_rate must be non-negative, got {self.stale_rate!r}")

    @property
    def active(self) -> bool:
        """Whether this schedule injects any fault at all."""
        return (
            self.loss_rate > 0.0
            or self.crash_burst_size > 0
            or self.partition_fraction > 0.0
            or self.stale_rate > 0.0
        )
